#include "pcpc/common/hypothesis.hpp"

#include <cmath>

#include "pcpc/common/assert.hpp"
#include "pcpc/common/stats.hpp"

namespace pcpc {

TestResult correlation_significance(std::span<const double> xs,
                                    std::span<const double> ys, double level) {
  PCPC_ASSERT(xs.size() == ys.size());
  TestResult result;
  const std::size_t n = xs.size();
  if (n < 3) return result;
  const double r = pearson_correlation(xs, ys);
  result.df = n - 2;
  const double denom = 1.0 - r * r;
  if (denom <= 0.0) {
    // |r| == 1: perfectly collinear, infinitely significant.
    result.statistic = r > 0 ? 1e308 : -1e308;
    result.critical = student_t_critical(result.df, level);
    result.significant = true;
    return result;
  }
  result.statistic = r * std::sqrt(static_cast<double>(n - 2) / denom);
  result.critical = student_t_critical(result.df, level);
  result.significant = std::abs(result.statistic) > result.critical;
  return result;
}

TestResult paired_t_test(std::span<const double> a, std::span<const double> b,
                         double level) {
  PCPC_ASSERT(a.size() == b.size());
  TestResult result;
  if (a.size() < 2) return result;
  OnlineStats diff;
  for (std::size_t i = 0; i < a.size(); ++i) diff.add(a[i] - b[i]);
  result.df = a.size() - 1;
  const double se = diff.stderr_mean();
  result.statistic = se > 0.0 ? diff.mean() / se : (diff.mean() == 0.0 ? 0.0 : 1e308);
  result.critical = student_t_critical(result.df, level);
  result.significant = std::abs(result.statistic) > result.critical;
  return result;
}

Slope linear_slope(std::span<const double> xs, std::span<const double> ys) {
  PCPC_ASSERT(xs.size() == ys.size());
  Slope slope;
  const std::size_t n = xs.size();
  if (n < 2) return slope;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxx += (xs[i] - mx) * (xs[i] - mx);
    sxy += (xs[i] - mx) * (ys[i] - my);
  }
  if (sxx == 0.0) return slope;
  slope.value = sxy / sxx;
  slope.intercept = my - slope.value * mx;
  if (n > 2) {
    double sse = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double e = ys[i] - (slope.intercept + slope.value * xs[i]);
      sse += e * e;
    }
    slope.stderr_value = std::sqrt(sse / static_cast<double>(n - 2) / sxx);
  }
  return slope;
}

}  // namespace pcpc
