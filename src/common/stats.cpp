#include "pcpc/common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "pcpc/common/assert.hpp"

namespace pcpc {

void OnlineStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::stderr_mean() const {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

namespace {

// Two-sided Student-t critical values; rows are df 1..30, columns are
// confidence levels 0.90 / 0.95 / 0.99.  Values from standard tables.
constexpr double kT90[30] = {6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860,
                             1.833, 1.812, 1.796, 1.782, 1.771, 1.761, 1.753, 1.746,
                             1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711,
                             1.708, 1.706, 1.703, 1.701, 1.699, 1.697};
constexpr double kT95[30] = {12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
                             2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
                             2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
                             2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
constexpr double kT99[30] = {63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355,
                             3.250,  3.169, 3.106, 3.055, 3.012, 2.977, 2.947, 2.921,
                             2.898,  2.878, 2.861, 2.845, 2.831, 2.819, 2.807, 2.797,
                             2.787,  2.779, 2.771, 2.763, 2.756, 2.750};

}  // namespace

double student_t_critical(std::size_t df, double level) {
  PCPC_ASSERT_MSG(df >= 1, "t distribution requires at least 1 degree of freedom");
  const double* table = nullptr;
  double asymptotic = 0.0;
  if (level <= 0.905) {
    table = kT90;
    asymptotic = 1.645;
  } else if (level <= 0.955) {
    table = kT95;
    asymptotic = 1.960;
  } else {
    table = kT99;
    asymptotic = 2.576;
  }
  if (df <= 30) return table[df - 1];
  // Interpolate gently toward the normal quantile for large df.
  if (df <= 60) return table[29] + (asymptotic - table[29]) * static_cast<double>(df - 30) / 30.0;
  return asymptotic;
}

double confidence_half_width(const OnlineStats& stats, double level) {
  if (stats.count() < 2) return 0.0;
  return student_t_critical(stats.count() - 1, level) * stats.stderr_mean();
}

double pearson_correlation(std::span<const double> xs, std::span<const double> ys) {
  PCPC_ASSERT(xs.size() == ys.size());
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::string Measurement::to_string(int precision) const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << mean << " ± " << ci95;
  return os.str();
}

Measurement measure(std::span<const double> replicates, double level) {
  OnlineStats s;
  for (double v : replicates) s.add(v);
  return Measurement{s.mean(), confidence_half_width(s, level), s.count()};
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  PCPC_ASSERT(hi > lo);
  PCPC_ASSERT(bins > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // guard fp edge
  ++counts_[idx];
}

void Histogram::merge(const Histogram& other) {
  PCPC_ASSERT_MSG(other.counts_.size() == counts_.size() && other.lo_ == lo_ &&
                      other.hi_ == hi_,
                  "histogram merge requires identical binning");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + static_cast<double>(i) * width_;
}

double Histogram::quantile(double q) const {
  PCPC_ASSERT(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  const auto target = static_cast<std::size_t>(q * static_cast<double>(total_));
  std::size_t cum = underflow_;
  if (cum > target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum > target) return bin_lo(i) + width_ / 2.0;
  }
  return hi_;
}

}  // namespace pcpc
