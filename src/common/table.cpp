#include "pcpc/common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "pcpc/common/assert.hpp"

namespace pcpc {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  PCPC_ASSERT_MSG(!header_.empty(), "table requires at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  PCPC_ASSERT_MSG(cells.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(cells));
}

std::string Table::format_cell(double v) { return format_double(v, 2); }

std::string Table::format_cell(long long v) { return std::to_string(v); }

std::string Table::format_cell(unsigned long long v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  const auto rule = [&] {
    std::string line = "+";
    for (auto w : widths) line += std::string(w + 2, '-') + "+";
    return line;
  }();

  const auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c)
      os << " " << std::left << std::setw(static_cast<int>(widths[c])) << row[c] << " |";
    os << "\n";
  };

  if (!title_.empty()) os << title_ << "\n";
  os << rule << "\n";
  print_row(header_);
  os << rule << "\n";
  for (const auto& row : rows_) print_row(row);
  os << rule << "\n";
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

}  // namespace pcpc
