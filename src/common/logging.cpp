#include "pcpc/common/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

namespace pcpc {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
std::mutex g_mutex;
std::once_flag g_env_once;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?????";
}

/// PCPC_LOG_LEVEL=debug|info|warn|error|off (case-insensitive, numeric
/// 0-4 also accepted).  Applied once, lazily, on the first level query;
/// an explicit set_log_level() consumes the once first and wins from
/// then on.
void apply_env_level() {
  const char* env = std::getenv("PCPC_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return;
  if (env[0] >= '0' && env[0] <= '4' && env[1] == '\0') {
    g_level.store(env[0] - '0');
    return;
  }
  char head = env[0];
  if (head >= 'A' && head <= 'Z') head = static_cast<char>(head - 'A' + 'a');
  switch (head) {
    case 'd': g_level.store(static_cast<int>(LogLevel::Debug)); break;
    case 'i': g_level.store(static_cast<int>(LogLevel::Info)); break;
    case 'w': g_level.store(static_cast<int>(LogLevel::Warn)); break;
    case 'e': g_level.store(static_cast<int>(LogLevel::Error)); break;
    case 'o': g_level.store(static_cast<int>(LogLevel::Off)); break;
    default: break;  // unknown value: keep the default
  }
}

void ensure_env_applied() { std::call_once(g_env_once, apply_env_level); }

/// "HH:MM:SS.mmm" wall clock (UTC) into `out`.
void format_timestamp(char* out, std::size_t size) {
  const auto now = std::chrono::system_clock::now();
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  std::tm tm{};
  gmtime_r(&secs, &tm);
  std::snprintf(out, size, "%02d:%02d:%02d.%03d", tm.tm_hour, tm.tm_min, tm.tm_sec,
                static_cast<int>(ms));
}

}  // namespace

void set_log_level(LogLevel level) {
  // Consume the env once first so a late lazy read can't overwrite an
  // explicit choice.
  ensure_env_applied();
  g_level.store(static_cast<int>(level));
}

LogLevel log_level() {
  ensure_env_applied();
  return static_cast<LogLevel>(g_level.load());
}

void log_line(LogLevel level, const std::string& message) {
  ensure_env_applied();
  if (static_cast<int>(level) < g_level.load()) return;
  char stamp[16];
  format_timestamp(stamp, sizeof stamp);
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[pcpc %s %s] %s\n", stamp, level_name(level), message.c_str());
}

}  // namespace pcpc
