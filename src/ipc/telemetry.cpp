#include "pcpc/ipc/telemetry.hpp"

#include "pcpc/ipc/layout.hpp"

namespace pcpc::ipc {

TelemetrySnapshot merged_telemetry(const ChannelHeader& hdr) {
  TelemetrySnapshot snap;
  snap.pushed = hdr.retired_pushed.load(std::memory_order_acquire);
  snap.dropped = hdr.retired_dropped.load(std::memory_order_acquire);
  snap.lease_lost = hdr.retired_lease_lost.load(std::memory_order_acquire);
  snap.paid_wakes = hdr.retired_tel[kTelPaidWakes].load(std::memory_order_acquire);
  snap.doorbells_free =
      hdr.retired_tel[kTelDoorbellFree].load(std::memory_order_acquire);
  snap.span_stages = hdr.retired_tel[kTelSpanStages].load(std::memory_order_acquire);

  for (std::size_t idx = 0; idx < kMaxProducers; ++idx) {
    const PeerSlot& peer = hdr.producers[idx];
    const PeerTelemetry& tel = hdr.producer_tel[idx];

    PeerTelemetrySnapshot p;
    p.index = idx;
    p.pid = peer.pid.load(std::memory_order_acquire);
    p.pushed = peer.pushed.load(std::memory_order_acquire);
    p.dropped = peer.dropped.load(std::memory_order_acquire);
    p.lease_lost = peer.lease_lost.load(std::memory_order_acquire);
    p.paid_wakes = tel.counters[kTelPaidWakes].load(std::memory_order_acquire);
    p.doorbells_free = tel.counters[kTelDoorbellFree].load(std::memory_order_acquire);
    p.span_stages = tel.counters[kTelSpanStages].load(std::memory_order_acquire);
    p.ring_pushed = tel.ring_head.load(std::memory_order_acquire);
    p.ring_dropped = tel.ring_dropped.load(std::memory_order_acquire);

    // Merge every slot's cells (a dead-but-unreaped peer's counts are
    // still live cells; a reaped one's are already in retired_tel — the
    // exchange(0) fold makes this sum exact either way).
    snap.pushed += p.pushed;
    snap.dropped += p.dropped;
    snap.lease_lost += p.lease_lost;
    snap.paid_wakes += p.paid_wakes;
    snap.doorbells_free += p.doorbells_free;
    snap.span_stages += p.span_stages;
    snap.ring_pushed += p.ring_pushed;
    snap.ring_dropped += p.ring_dropped;

    if (peer.state.load(std::memory_order_acquire) == kPeerActive) {
      snap.live.push_back(p);
    }
  }
  return snap;
}

}  // namespace pcpc::ipc
