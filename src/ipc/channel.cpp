#include "pcpc/ipc/channel.hpp"

#include <signal.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <new>
#include <thread>

#include "pcpc/common/assert.hpp"
#include "pcpc/common/logging.hpp"
#include "pcpc/obs/obs.hpp"

namespace pcpc::ipc {

std::int64_t now_ns() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

bool pid_alive(std::int32_t pid) {
  if (pid <= 0) return false;
  if (::kill(pid, 0) != 0) return errno != ESRCH;
#if defined(__linux__)
  // kill(pid, 0) succeeds on zombies; a SIGKILLed child not yet reaped by
  // its parent must still count as dead for lease purposes.
  char path[64];
  std::snprintf(path, sizeof(path), "/proc/%d/stat", pid);
  std::FILE* f = std::fopen(path, "re");
  if (f == nullptr) return false;
  // Field 3 (state) follows the parenthesized comm, which may itself
  // contain spaces — scan past the LAST ')'.
  char buf[512];
  const std::size_t got = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[got] = '\0';
  const char* close_paren = nullptr;
  for (const char* p = buf; *p != '\0'; ++p) {
    if (*p == ')') close_paren = p;
  }
  if (close_paren == nullptr || close_paren[1] == '\0') return false;
  return close_paren[2] != 'Z';
#else
  return true;
#endif
}

const char* push_result_name(PushResult r) {
  switch (r) {
    case PushResult::kOk: return "ok";
    case PushResult::kFull: return "full";
    case PushResult::kConsumerDead: return "consumer_dead";
    case PushResult::kLeaseLost: return "lease_lost";
  }
  return "?";
}

ConservationReport read_report(const ChannelHeader& hdr) {
  ConservationReport r;
  r.admitted = hdr.tail_ticket.load(std::memory_order_acquire);
  r.consumed = hdr.consumed.load(std::memory_order_acquire);
  r.reclaimed = hdr.reclaimed.load(std::memory_order_acquire);
  r.residue = r.admitted - r.consumed - r.reclaimed;
  r.futex_wakes = hdr.futex_wakes.load(std::memory_order_acquire);
  r.doorbell = hdr.doorbell.load(std::memory_order_acquire);
  r.peers_reaped = hdr.peers_reaped.load(std::memory_order_acquire);
  r.acked_pushes = hdr.retired_pushed.load(std::memory_order_acquire);
  r.dropped = hdr.retired_dropped.load(std::memory_order_acquire);
  r.lease_lost = hdr.retired_lease_lost.load(std::memory_order_acquire);
  for (const PeerSlot& p : hdr.producers) {
    r.acked_pushes += p.pushed.load(std::memory_order_acquire);
    r.dropped += p.dropped.load(std::memory_order_acquire);
    r.lease_lost += p.lease_lost.load(std::memory_order_acquire);
  }
  if (hdr.payload_ring_bytes > 0) {
    r.var_delivered_records = hdr.var_delivered_records.load(std::memory_order_acquire);
    r.var_delivered_bytes = hdr.var_delivered_bytes.load(std::memory_order_acquire);
    r.var_lost_records = hdr.var_lost_records.load(std::memory_order_acquire);
    for (std::size_t idx = 0; idx < kMaxProducers; ++idx) {
      const queue::VarCounters c = var_ring_at(hdr, idx)->counters();
      r.var_admitted_bytes += c.tail_bytes;
      r.var_consumed_bytes += c.consumed_footprint_bytes;
      r.var_reclaimed_bytes += c.reclaimed_footprint_bytes;
      r.var_padding_bytes += c.released_padding_bytes;
      r.var_residue_bytes += c.tail_bytes - c.head_bytes;
    }
  }
  return r;
}

namespace {

constexpr std::size_t kSlotRound = 64;

std::uint64_t physical_slots(std::size_t capacity) {
  // Admission overshoot is bounded by the number of concurrent producers,
  // so capacity + kMaxProducers + 1 slots guarantee a claimed ticket's
  // slot is already re-sequenced (no producer-side wait, no wraparound
  // collision with an early-swept slot).
  const std::size_t needed = capacity + kMaxProducers + 1;
  return static_cast<std::uint64_t>((needed + kSlotRound - 1) / kSlotRound * kSlotRound);
}

ChannelHeader* header_of(const ShmSegment& seg) {
  return reinterpret_cast<ChannelHeader*>(seg.payload());
}

IpcSlot* slots_of(const ShmSegment& seg) {
  return reinterpret_cast<IpcSlot*>(static_cast<char*>(seg.payload()) + slots_offset());
}

/// Folds a retiring peer's counters into the header's durable tallies
/// and zeroes them, so a later joiner reusing the registry slot cannot
/// erase history the conservation report depends on.  The exchange keeps
/// the fold exactly-once; a report racing the fold can transiently
/// undercount but settles exact (the harness reads reports only after
/// waitpid, which orders after a clean child's own detach fold).
void retire_peer_counters(ChannelHeader& hdr, std::size_t idx) {
  PeerSlot& peer = hdr.producers[idx];
  hdr.retired_pushed.fetch_add(
      peer.pushed.exchange(0, std::memory_order_acq_rel), std::memory_order_relaxed);
  hdr.retired_dropped.fetch_add(
      peer.dropped.exchange(0, std::memory_order_acq_rel), std::memory_order_relaxed);
  hdr.retired_lease_lost.fetch_add(
      peer.lease_lost.exchange(0, std::memory_order_acq_rel),
      std::memory_order_relaxed);
  PeerTelemetry& tel = hdr.producer_tel[idx];
  for (std::size_t c = 0; c < kTelCounterCount; ++c) {
    hdr.retired_tel[c].fetch_add(tel.counters[c].exchange(0, std::memory_order_acq_rel),
                                 std::memory_order_relaxed);
  }
}

void join_peer(PeerSlot& peer, std::uint64_t epoch) {
  peer.pid.store(static_cast<std::int32_t>(::getpid()), std::memory_order_relaxed);
  peer.epoch.store(epoch, std::memory_order_relaxed);
  peer.heartbeat_ns.store(now_ns(), std::memory_order_relaxed);
  peer.pushed.store(0, std::memory_order_relaxed);
  peer.dropped.store(0, std::memory_order_relaxed);
  peer.lease_lost.store(0, std::memory_order_relaxed);
  peer.state.store(kPeerActive, std::memory_order_release);
}

/// Dead for lease purposes: not Active in the registry, or Active with a
/// stale heartbeat and a gone pid.  A stale-but-alive peer (SIGSTOP) is
/// NOT dead.
bool peer_dead(const PeerSlot& peer, std::int64_t timeout_ns) {
  const std::uint32_t state = peer.state.load(std::memory_order_acquire);
  if (state != kPeerActive) return true;
  const std::int64_t hb = peer.heartbeat_ns.load(std::memory_order_acquire);
  if (now_ns() - hb <= timeout_ns) return false;
  return !pid_alive(peer.pid.load(std::memory_order_acquire));
}

}  // namespace

// ---------------------------------------------------------------------------
// Consumer
// ---------------------------------------------------------------------------

Consumer::~Consumer() {
  if (hdr_ != nullptr) {
    hdr_->consumer_peer.state.store(kPeerDead, std::memory_order_release);
    segment_.unlink();
  }
}

Consumer::Consumer(Consumer&& other) noexcept
    : segment_(std::move(other.segment_)), hdr_(other.hdr_), slots_(other.slots_),
      var_rings_(other.var_rings_), hole_ticket_(other.hole_ticket_),
      hole_since_ns_(other.hole_since_ns_),
      last_heartbeat_ns_(other.last_heartbeat_ns_), span_every_(other.span_every_) {
  other.hdr_ = nullptr;
  other.slots_ = nullptr;
  other.var_rings_.fill(nullptr);
}

Consumer& Consumer::operator=(Consumer&& other) noexcept {
  if (this != &other) {
    this->~Consumer();
    new (this) Consumer(std::move(other));
  }
  return *this;
}

std::optional<Consumer> Consumer::create(const std::string& shm_name,
                                         const ChannelConfig& config,
                                         std::string* error) {
  PCPC_ASSERT_MSG(config.capacity > 0, "ipc channel capacity must be positive");
  const std::uint64_t n_slots = physical_slots(config.capacity);
  ShmSegment seg = ShmSegment::create(
      shm_name,
      segment_payload_bytes(n_slots, config.payload_ring_bytes,
                            config.payload_max_record),
      error);
  if (!seg.valid()) return std::nullopt;

  auto* hdr = new (seg.payload()) ChannelHeader();
  hdr->abi_guard = abi_fingerprint();
  hdr->n_slots = n_slots;
  hdr->capacity = config.capacity;
  hdr->lease_ns = config.lease_ns;
  hdr->heartbeat_period_ns = config.heartbeat_period_ns;
  hdr->heartbeat_timeout_ns = config.heartbeat_timeout_ns > 0
                                  ? config.heartbeat_timeout_ns
                                  : 8 * config.heartbeat_period_ns;
  hdr->wake_threshold = config.wake_threshold > 0
                            ? config.wake_threshold
                            : std::max<std::uint64_t>(1, config.capacity / 2);
  hdr->epoch_mono_ns = now_ns();
  hdr->span_sample_every = config.span_sample_every;
  IpcSlot* slots = slots_of(seg);
  for (std::uint64_t p = 0; p < n_slots; ++p) {
    auto* slot = new (&slots[p]) IpcSlot();
    slot->seq.store(p, std::memory_order_relaxed);
  }

  Consumer c;
  if (config.payload_ring_bytes > 0) {
    // Payload plane: one eager-publish SPSC byte ring per registry slot,
    // constructed in place so its cursors/counters are shm state every
    // process (and the reaper) can reach by offset.
    hdr->payload_ring_bytes = config.payload_ring_bytes;
    hdr->payload_max_record = config.payload_max_record;
    for (std::size_t idx = 0; idx < kMaxProducers; ++idx) {
      char* region = reinterpret_cast<char*>(var_ring_at(*hdr, idx));
      const std::size_t cells = var_align64(sizeof(VarIpcRing));
      auto* ring = new (region) VarIpcRing(
          config.payload_ring_bytes, /*max_bytes=*/0, config.payload_max_record,
          queue::Placement{region + cells,
                           VarIpcRing::placement_bytes(config.payload_ring_bytes,
                                                       config.payload_max_record)},
          /*eager_publish=*/true);
      c.var_rings_[idx] = ring;
    }
  }
  join_peer(hdr->consumer_peer, hdr->epoch_counter.load(std::memory_order_relaxed));
  seg.mark_ready();

  c.segment_ = std::move(seg);
  c.hdr_ = hdr;
  c.slots_ = slots;
  c.last_heartbeat_ns_ = now_ns();
  c.span_every_ = hdr->span_sample_every;
  return c;
}

void Consumer::heartbeat() {
  const std::int64_t now = now_ns();
  hdr_->consumer_peer.heartbeat_ns.store(now, std::memory_order_release);
  last_heartbeat_ns_ = now;
}

void Consumer::maybe_heartbeat() {
  if (now_ns() - last_heartbeat_ns_ >= hdr_->heartbeat_period_ns) heartbeat();
}

bool Consumer::has_visible_work() const {
  const std::uint64_t h = hdr_->head.load(std::memory_order_relaxed);
  const IpcSlot& slot = slots_[h % hdr_->n_slots];
  const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
  // Published at head, or already resolved out-of-band (drain will advance).
  return seq == h + 1 || seq == h + hdr_->n_slots;
}

bool Consumer::try_recover_head(std::uint64_t h, IpcSlot& slot, std::uint64_t seq) {
  if (seq_is_locked(seq)) {
    // Mid-publish lease.  Honor it while the owner is plausibly alive
    // (Active and pid present — a SIGSTOPped owner keeps its lease);
    // reclaim only on proof of death.
    const std::size_t owner = seq_owner(seq);
    PCPC_ASSERT_MSG(owner < kMaxProducers, "lease owner out of range");
    const PeerSlot& peer = hdr_->producers[owner];
    const std::uint32_t state = peer.state.load(std::memory_order_acquire);
    if (state == kPeerActive &&
        pid_alive(peer.pid.load(std::memory_order_acquire))) {
      return false;  // alive: wait for publish (or the reaper, later)
    }
    // Owner dead or already reaped: the lease can never be published.
    slot.seq.store(h + hdr_->n_slots, std::memory_order_release);
    hdr_->head.store(h + 1, std::memory_order_release);
    hdr_->reclaimed.fetch_add(1, std::memory_order_relaxed);
    hole_ticket_ = UINT64_MAX;
    return true;
  }

  if (seq == h) {
    // Free hole: a ticket was claimed but its producer never took the
    // lease (death between fetch_add and the lease CAS, or it is merely
    // slow).  Age it for lease_ns from first observation, then reclaim
    // with a CAS — a slow-but-alive producer loses the arbitration
    // cleanly (its lease CAS fails and it reports kLeaseLost).
    const std::int64_t now = now_ns();
    if (hole_ticket_ != h) {
      hole_ticket_ = h;
      hole_since_ns_ = now;
      return false;
    }
    if (now - hole_since_ns_ < hdr_->lease_ns) return false;
    std::uint64_t expected = h;
    if (slot.seq.compare_exchange_strong(expected, h + hdr_->n_slots,
                                         std::memory_order_acq_rel)) {
      hdr_->head.store(h + 1, std::memory_order_release);
      hdr_->reclaimed.fetch_add(1, std::memory_order_relaxed);
    }
    // CAS failure means the producer showed up after all — next drain
    // pass will see the lease/publish.
    hole_ticket_ = UINT64_MAX;
    return true;
  }

  PCPC_ASSERT_MSG(false, "ipc slot in impossible state");
  return false;
}

std::size_t Consumer::drain_peer_telemetry(std::size_t idx) {
  obs::Session* session = obs::Session::current();
  if (session == nullptr) return 0;
  return telemetry_drain(hdr_->producer_tel[idx], [&](const obs::Event& e) {
    obs::Event merged = e;
    merged.origin = static_cast<std::uint16_t>(idx + 1);
    session->emit(merged);
  });
}

std::size_t Consumer::drain_telemetry() {
  if (obs::Session::current() == nullptr) return 0;
  std::size_t n = 0;
  for (std::size_t idx = 0; idx < kMaxProducers; ++idx) {
    n += drain_peer_telemetry(idx);
  }
  return n;
}

std::size_t Consumer::reap() {
  const std::int64_t timeout = hdr_->heartbeat_timeout_ns;
  std::size_t reaped = 0;
  for (std::size_t idx = 0; idx < kMaxProducers; ++idx) {
    PeerSlot& peer = hdr_->producers[idx];
    if (peer.state.load(std::memory_order_acquire) != kPeerActive) continue;
    const std::int64_t hb = peer.heartbeat_ns.load(std::memory_order_acquire);
    const std::int32_t pid = peer.pid.load(std::memory_order_acquire);
    if (now_ns() - hb <= timeout || pid_alive(pid)) continue;

    // Provably dead: stale heartbeat AND the pid is gone.  Sweep every
    // lease it holds anywhere in the ring (not just at head) before the
    // registry slot becomes reusable — a recycled index must never be
    // blamed for a dead predecessor's lease.
    peer.state.store(kPeerDead, std::memory_order_release);
    std::size_t swept = 0;
    for (std::uint64_t p = 0; p < hdr_->n_slots; ++p) {
      IpcSlot& slot = slots_[p];
      const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
      if (!seq_is_locked(seq) || seq_owner(seq) != idx) continue;
      const std::uint64_t ticket = seq_ticket(seq);
      slot.seq.store(ticket + hdr_->n_slots, std::memory_order_release);
      hdr_->reclaimed.fetch_add(1, std::memory_order_relaxed);
      ++swept;
    }
    // Varlen plane: resolve every record the dead producer left claimed
    // in its byte ring — committed-but-unannounced records and in-flight
    // reservations alike become kReclaimed (the CAS means a zombie's
    // late commit loses its lease) — then reconcile the admission
    // counter and return the bytes, so a successor attaching to this
    // registry slot inherits an empty, exactly-accounted ring.
    // Announced-but-undrained records are resolved too; their dangling
    // announcements later drain as var_lost_records (offset mismatch).
    std::size_t var_resolved = 0;
    if (var_rings_[idx] != nullptr) {
      VarIpcRing& ring = *var_rings_[idx];
      var_resolved = ring.reclaim_all();
      ring.reconcile_admitted();
      ring.release_until(ring.claim_offset());
    }
    PCPC_WARN << "ipc: reaped dead producer idx=" << idx << " pid=" << pid
              << " (swept " << swept << " lease" << (swept == 1 ? "" : "s")
              << ", resolved " << var_resolved << " var record"
              << (var_resolved == 1 ? "" : "s") << ")";
    // Salvage whatever trace events the dead peer published before the
    // slot's ring inherits a new owner, then fold its metric cells into
    // the retired tallies — same no-counts-lost-to-SIGKILL rule as the
    // pushed/dropped fold.
    drain_peer_telemetry(idx);
    retire_peer_counters(*hdr_, idx);
    peer.pid.store(0, std::memory_order_relaxed);
    peer.state.store(kPeerFree, std::memory_order_release);
    hdr_->peers_reaped.fetch_add(1, std::memory_order_relaxed);
    ++reaped;
  }
  return reaped;
}

WakeKind Consumer::wait(std::int64_t timeout_ns) {
  maybe_heartbeat();
  // The idle edge is the natural merge point: pull producer-side trace
  // events out of the shm rings before parking (cheap when rings are
  // empty — one head/tail load per registry slot).
  drain_telemetry();
  if (has_visible_work()) return WakeKind::kPoll;

  const std::uint32_t ticket = hdr_->doorbell.load(std::memory_order_acquire);
  hdr_->consumer_state.store(kConsumerSleeping, std::memory_order_seq_cst);
  // Recheck after announcing sleep: a producer that published before the
  // store above may not have rung (below threshold), so we must not park
  // past visible work.
  WaitResult wr = WaitResult::kTimeout;
  if (!has_visible_work()) {
    wr = futex_wait(&hdr_->doorbell, ticket, timeout_ns);
  }
  // Consume the wake token (if any): every producer-side futex_wakes
  // increment created exactly one kConsumerWoken, and this exchange is
  // its unique consumption point — paid wakeups tally exactly.
  const std::uint32_t prev =
      hdr_->consumer_state.exchange(kConsumerAwake, std::memory_order_acq_rel);
  const bool paid = prev == kConsumerWoken;
  // Timestamp in the segment-epoch clock domain, like every other event
  // any peer of this channel records — merged traces must not mix
  // absolute CLOCK_MONOTONIC with per-process epochs.
  obs::note_wakeup(/*core=*/0, /*consumer=*/0, obs::kNoSlot, paid,
                   /*scheduled=*/!paid, now_ns() - hdr_->epoch_mono_ns);
  if (paid) return WakeKind::kDoorbell;
  return wr == WaitResult::kTimeout ? WakeKind::kTimeout : WakeKind::kPoll;
}

// ---------------------------------------------------------------------------
// Producer
// ---------------------------------------------------------------------------

Producer::~Producer() { detach(); }

Producer::Producer(Producer&& other) noexcept
    : segment_(std::move(other.segment_)), hdr_(other.hdr_), slots_(other.slots_),
      ring_(other.ring_), index_(other.index_), config_(other.config_),
      last_heartbeat_ns_(other.last_heartbeat_ns_), span_every_(other.span_every_),
      crash_hook_(std::move(other.crash_hook_)) {
  other.hdr_ = nullptr;
  other.slots_ = nullptr;
  other.ring_ = nullptr;
  other.index_ = SIZE_MAX;
}

Producer& Producer::operator=(Producer&& other) noexcept {
  if (this != &other) {
    detach();
    segment_ = std::move(other.segment_);
    hdr_ = other.hdr_;
    slots_ = other.slots_;
    ring_ = other.ring_;
    index_ = other.index_;
    config_ = other.config_;
    last_heartbeat_ns_ = other.last_heartbeat_ns_;
    span_every_ = other.span_every_;
    crash_hook_ = std::move(other.crash_hook_);
    other.hdr_ = nullptr;
    other.slots_ = nullptr;
    other.ring_ = nullptr;
    other.index_ = SIZE_MAX;
  }
  return *this;
}

void Producer::detach() {
  if (hdr_ == nullptr || index_ == SIZE_MAX) {
    hdr_ = nullptr;
    return;
  }
  PeerSlot& peer = hdr_->producers[index_];
  retire_peer_counters(*hdr_, index_);
  peer.pid.store(0, std::memory_order_relaxed);
  peer.state.store(kPeerFree, std::memory_order_release);
  hdr_ = nullptr;
  slots_ = nullptr;
  ring_ = nullptr;
  index_ = SIZE_MAX;
}

std::optional<Producer> Producer::attach(const std::string& shm_name,
                                         const ProducerConfig& config,
                                         std::string* error) {
  ShmSegment seg = ShmSegment::attach(shm_name, config.attach, error);
  if (!seg.valid()) return std::nullopt;
  ChannelHeader* hdr = header_of(seg);
  if (hdr->version != kLayoutVersion || hdr->abi_guard != abi_fingerprint()) {
    if (error != nullptr) {
      *error = "attach(" + shm_name + "): layout version/ABI mismatch";
    }
    return std::nullopt;
  }
  if (peer_dead(hdr->consumer_peer, hdr->heartbeat_timeout_ns)) {
    if (error != nullptr) {
      *error = "attach(" + shm_name + "): consumer is dead";
    }
    return std::nullopt;
  }
  std::size_t index = SIZE_MAX;
  for (std::size_t idx = 0; idx < kMaxProducers; ++idx) {
    PeerSlot& peer = hdr->producers[idx];
    std::uint32_t expected = kPeerFree;
    if (peer.state.compare_exchange_strong(expected, kPeerJoining,
                                           std::memory_order_acq_rel)) {
      join_peer(peer, hdr->epoch_counter.fetch_add(1, std::memory_order_acq_rel));
      index = idx;
      break;
    }
  }
  if (index == SIZE_MAX) {
    if (error != nullptr) {
      *error = "attach(" + shm_name + "): producer registry full";
    }
    return std::nullopt;
  }

  Producer p;
  p.hdr_ = hdr;
  p.slots_ = slots_of(seg);
  p.segment_ = std::move(seg);
  p.index_ = index;
  p.config_ = config;
  p.last_heartbeat_ns_ = now_ns();
  p.span_every_ = hdr->span_sample_every;
  if (hdr->payload_ring_bytes > 0) {
    // Adopt this registry slot's byte ring: stamp our identity into
    // future record headers and rebuild the producer-private cursors
    // from the shared state (the predecessor may have died mid-record;
    // the reaper resolved the ring before freeing the slot).
    p.ring_ = var_ring_at(*hdr, index);
    p.ring_->set_owner(static_cast<std::uint16_t>(index + 1));
    p.ring_->producer_attach();
  }
  return p;
}

void Producer::heartbeat() {
  const std::int64_t now = now_ns();
  hdr_->producers[index_].heartbeat_ns.store(now, std::memory_order_release);
  last_heartbeat_ns_ = now;
}

void Producer::maybe_heartbeat() {
  if (now_ns() - last_heartbeat_ns_ >= hdr_->heartbeat_period_ns) heartbeat();
}

bool Producer::consumer_dead() const {
  return peer_dead(hdr_->consumer_peer, hdr_->heartbeat_timeout_ns);
}

void Producer::ring_doorbell() {
  const std::uint64_t fill = hdr_->tail_ticket.load(std::memory_order_relaxed) -
                             hdr_->head.load(std::memory_order_acquire);
  if (fill < hdr_->wake_threshold) return;
  hdr_->doorbell.fetch_add(1, std::memory_order_release);
  std::uint32_t expected = kConsumerSleeping;
  if (hdr_->consumer_state.compare_exchange_strong(expected, kConsumerWoken,
                                                   std::memory_order_acq_rel)) {
    // We won the right to wake: count the paid wake at the exact point it
    // costs a syscall (the identity the obs ledger is checked against).
    // The per-peer telemetry cell is bumped in the same branch, so the
    // merged cross-process paid-wake total equals futex_wakes identically.
    hdr_->futex_wakes.fetch_add(1, std::memory_order_relaxed);
    telemetry_bump(hdr_->producer_tel[index_], kTelPaidWakes);
    futex_wake(&hdr_->doorbell, 1);
  } else {
    telemetry_bump(hdr_->producer_tel[index_], kTelDoorbellFree);
  }
}

PushResult Producer::push(std::uint64_t value) {
  PeerSlot& me = hdr_->producers[index_];
  maybe_heartbeat();
  // Entry timestamp for the produce stage.  Read the clock only when
  // spans are armed on this channel (one branch otherwise); whether THIS
  // item is sampled is only decidable after the ticket claim below.
  std::int64_t span_enter_ns = 0;
  if (span_every_ != 0) span_enter_ns = now_ns();

  // Admission: optimistic fullness pre-check WITHOUT claiming a ticket.
  // A rejected push must leave no trace in the ring, or a producer dying
  // between "claim" and "un-claim" would leak tickets and break the
  // conservation identity.  Overshoot past capacity is bounded by the
  // number of concurrent producers (each can pass the check once before
  // its fetch_add lands), which physical_slots() budgets for.
  std::int64_t backoff_ns = config_.initial_backoff_ns;
  for (int attempt = 0;; ++attempt) {
    if (consumer_dead()) {
      me.dropped.fetch_add(1, std::memory_order_relaxed);
      return PushResult::kConsumerDead;
    }
    const std::uint64_t tail = hdr_->tail_ticket.load(std::memory_order_relaxed);
    const std::uint64_t head = hdr_->head.load(std::memory_order_acquire);
    if (tail - head < hdr_->capacity) break;
    if (attempt >= config_.full_retries) {
      me.dropped.fetch_add(1, std::memory_order_relaxed);
      return PushResult::kFull;
    }
    std::this_thread::sleep_for(std::chrono::nanoseconds(backoff_ns));
    backoff_ns = std::min(backoff_ns * 2, config_.max_backoff_ns);
    maybe_heartbeat();
  }

  const std::uint64_t t = hdr_->tail_ticket.fetch_add(1, std::memory_order_acq_rel);
  if (crash_hook_) crash_hook_(CrashPoint::kAfterClaim);

  // The slot is already re-sequenced to t by the time the ticket exists
  // (n_slots > capacity + kMaxProducers), so the lease CAS can only fail
  // if the consumer aged us out as a hole — we were descheduled/stopped
  // for longer than lease_ns between the fetch_add above and here.
  IpcSlot& slot = slots_[t % hdr_->n_slots];
  std::uint64_t expected = t;
  if (!slot.seq.compare_exchange_strong(expected, seq_locked(t, index_),
                                        std::memory_order_acq_rel)) {
    me.lease_lost.fetch_add(1, std::memory_order_relaxed);
    return PushResult::kLeaseLost;
  }
  if (crash_hook_) crash_hook_(CrashPoint::kMidPublish);

  slot.value = value;
  expected = seq_locked(t, index_);
  if (!slot.seq.compare_exchange_strong(expected, t + 1,
                                        std::memory_order_acq_rel)) {
    // Swept mid-publish: only possible if the consumer proved us dead
    // (pid probe raced a pid it mistook for gone).  Count and report
    // rather than corrupt the next revolution with a blind store.
    me.lease_lost.fetch_add(1, std::memory_order_relaxed);
    return PushResult::kLeaseLost;
  }
  if (crash_hook_) crash_hook_(CrashPoint::kAfterPublish);

  me.pushed.fetch_add(1, std::memory_order_relaxed);
  if (span_every_ != 0 && t % span_every_ == 0) {
    // Sampled item: publish produce/enqueue stages into this peer's shm
    // trace ring, in the segment-epoch clock domain.  The ticket is the
    // item id — the consumer derives the same id for its stages without
    // any payload tagging.
    PeerTelemetry& tel = hdr_->producer_tel[index_];
    obs::Event e;
    e.ts_ns = span_enter_ns - hdr_->epoch_mono_ns;
    e.arg0 = static_cast<std::int64_t>(t);
    e.arg1 = static_cast<std::int64_t>(obs::ItemStage::kProduce);
    e.consumer = static_cast<std::uint32_t>(index_);  ///< the pair id
    e.kind = obs::EventKind::kItemStage;
    telemetry_push(tel, e);
    e.ts_ns = now_ns() - hdr_->epoch_mono_ns;
    e.arg1 = static_cast<std::int64_t>(obs::ItemStage::kEnqueue);
    telemetry_push(tel, e);
    telemetry_bump(tel, kTelSpanStages, 2);
  }
  ring_doorbell();
  return PushResult::kOk;
}

PushResult Producer::push_record(std::span<const std::byte> payload) {
  PCPC_ASSERT_MSG(ring_ != nullptr, "push_record on a channel without a payload plane");
  PCPC_ASSERT_MSG(payload.size() <= hdr_->payload_max_record,
                  "record exceeds the channel's max payload");
  PeerSlot& me = hdr_->producers[index_];
  maybe_heartbeat();

  // Byte-ring admission, with the same bounded retry/backoff + liveness
  // loop as the control ring (the var ring only frees space when the
  // consumer drains, so a full ring means a slow/absent consumer).
  queue::VarReservation r;
  std::int64_t backoff_ns = config_.initial_backoff_ns;
  for (int attempt = 0;; ++attempt) {
    if (consumer_dead()) {
      me.dropped.fetch_add(1, std::memory_order_relaxed);
      return PushResult::kConsumerDead;
    }
    if (ring_->try_reserve(static_cast<std::uint32_t>(payload.size()), r)) break;
    if (attempt >= config_.full_retries) {
      me.dropped.fetch_add(1, std::memory_order_relaxed);
      return PushResult::kFull;
    }
    std::this_thread::sleep_for(std::chrono::nanoseconds(backoff_ns));
    backoff_ns = std::min(backoff_ns * 2, config_.max_backoff_ns);
    maybe_heartbeat();
  }
  if (crash_hook_) crash_hook_(CrashPoint::kAfterReserve);

  std::memcpy(r.data, payload.data(), payload.size());
  if (!ring_->commit(r)) {
    // A reaper decided we were dead mid-record and reclaimed the
    // reservation; the commit CAS losing is how we learn it.
    me.lease_lost.fetch_add(1, std::memory_order_relaxed);
    return PushResult::kLeaseLost;
  }
  if (crash_hook_) crash_hook_(CrashPoint::kAfterCommit);

  // Announce: one control value carrying (registry index, record
  // offset).  push() brings its own retry/backoff, liveness checks,
  // crash hooks, span sampling, and doorbell.
  const PushResult res = push(var_announce_value(index_, r.offset));
  if (res != PushResult::kOk) {
    // Committed but unannounceable (control ring full / consumer dead /
    // control lease lost): withdraw the record so the consumer's
    // record<->announcement correspondence stays exact.  The bytes are
    // counted reclaimed when the window releases.
    ring_->abandon(r);
  }
  return res;
}

}  // namespace pcpc::ipc
