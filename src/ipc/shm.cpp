#include "pcpc/ipc/shm.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "pcpc/common/assert.hpp"
#include "pcpc/common/logging.hpp"

namespace pcpc::ipc {

namespace {

constexpr std::uint64_t kReadyMagic = 0x70637063'69706331ULL;  // "pcpcipc1"

void set_error(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what + ": " + std::strerror(errno);
}

std::atomic<std::uint64_t>* ready_word(void* base) {
  return reinterpret_cast<std::atomic<std::uint64_t>*>(base);
}

}  // namespace

ShmSegment::~ShmSegment() {
  if (base_ != nullptr) ::munmap(base_, bytes_);
  if (fd_ >= 0) ::close(fd_);
}

ShmSegment::ShmSegment(ShmSegment&& other) noexcept
    : base_(other.base_), bytes_(other.bytes_), fd_(other.fd_), owner_(other.owner_),
      name_(std::move(other.name_)) {
  other.base_ = nullptr;
  other.bytes_ = 0;
  other.fd_ = -1;
  other.owner_ = false;
}

ShmSegment& ShmSegment::operator=(ShmSegment&& other) noexcept {
  if (this != &other) {
    if (base_ != nullptr) ::munmap(base_, bytes_);
    if (fd_ >= 0) ::close(fd_);
    base_ = other.base_;
    bytes_ = other.bytes_;
    fd_ = other.fd_;
    owner_ = other.owner_;
    name_ = std::move(other.name_);
    other.base_ = nullptr;
    other.bytes_ = 0;
    other.fd_ = -1;
    other.owner_ = false;
  }
  return *this;
}

ShmSegment ShmSegment::create(const std::string& name, std::size_t bytes,
                              std::string* error) {
  ShmSegment seg;
  const std::size_t total = bytes + payload_offset();
  int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0 && errno == EEXIST) {
    // A previous owner crashed without unlinking: reclaim the name.  Any
    // still-attached peer keeps its old mapping; new peers get ours.
    PCPC_WARN << "ShmSegment: reclaiming stale segment " << name;
    ::shm_unlink(name.c_str());
    fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  }
  if (fd < 0) {
    set_error(error, "shm_open(" + name + ")");
    return seg;
  }
  if (::ftruncate(fd, static_cast<off_t>(total)) != 0) {
    set_error(error, "ftruncate(" + name + ")");
    ::close(fd);
    ::shm_unlink(name.c_str());
    return seg;
  }
  void* base = ::mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) {
    set_error(error, "mmap(" + name + ")");
    ::close(fd);
    ::shm_unlink(name.c_str());
    return seg;
  }
  seg.base_ = base;
  seg.bytes_ = total;
  seg.fd_ = fd;
  seg.owner_ = true;
  seg.name_ = name;
  return seg;
}

ShmSegment ShmSegment::attach(const std::string& name, const AttachOptions& options,
                              std::string* error) {
  ShmSegment seg;
  std::int64_t backoff_ms = options.initial_backoff_ms;
  std::string why = "segment never appeared";
  for (int attempt = 0; attempt < options.attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, options.max_backoff_ms);
    }
    const int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
    if (fd < 0) {
      why = std::string("shm_open: ") + std::strerror(errno);
      continue;
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size < static_cast<off_t>(payload_offset())) {
      // Exists but the creator has not sized it yet.
      why = "segment not yet sized";
      ::close(fd);
      continue;
    }
    void* base = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                        PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    if (base == MAP_FAILED) {
      why = std::string("mmap: ") + std::strerror(errno);
      ::close(fd);
      continue;
    }
    if (ready_word(base)->load(std::memory_order_acquire) != kReadyMagic) {
      // Mapped mid-construction; back off and retry.
      why = "segment not yet marked ready";
      ::munmap(base, static_cast<std::size_t>(st.st_size));
      ::close(fd);
      continue;
    }
    seg.base_ = base;
    seg.bytes_ = static_cast<std::size_t>(st.st_size);
    seg.fd_ = fd;
    seg.owner_ = false;
    seg.name_ = name;
    return seg;
  }
  if (error != nullptr) {
    *error = "attach(" + name + ") gave up after " + std::to_string(options.attempts) +
             " attempts (" + why + ")";
  }
  return seg;
}

void ShmSegment::mark_ready() {
  PCPC_ASSERT_MSG(valid() && owner_, "mark_ready on a non-owner segment");
  ready_word(base_)->store(kReadyMagic, std::memory_order_release);
}

void ShmSegment::unlink() {
  if (!name_.empty()) ::shm_unlink(name_.c_str());
}

void* ShmSegment::payload() const {
  return static_cast<char*>(base_) + payload_offset();
}

std::size_t ShmSegment::payload_offset() {
  return 64;  // ready marker in its own cache line, payload cache-aligned
}

}  // namespace pcpc::ipc
