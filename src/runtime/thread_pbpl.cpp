#include "pcpc/runtime/thread_pbpl.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <span>

#include "pcpc/common/assert.hpp"
#include "pcpc/obs/obs.hpp"
#include "pcpc/runtime/cpu_meter.hpp"

namespace pcpc::runtime {

namespace {
constexpr core::SlotIndex kMinSlot = std::numeric_limits<core::SlotIndex>::min();

/// Sampled-span item id: the pair in the high half, the item's admission
/// position in the low half.  The drain side reconstructs the same id
/// from its own drained-position counter (positional sampling — the
/// buffer carries timestamps only, no per-item tags).
std::uint64_t span_item_id(std::size_t consumer, std::uint64_t seq) {
  return (static_cast<std::uint64_t>(consumer) << 32) | (seq & 0xffffffffu);
}

/// Reads the stamp word a committed record carries in its first 8
/// payload bytes back into a clock point (see commit_record).
Clock::time_point record_stamp(const std::byte* data) {
  std::int64_t ns = 0;
  std::memcpy(&ns, data, sizeof ns);
  return Clock::time_point(
      std::chrono::duration_cast<Clock::duration>(std::chrono::nanoseconds(ns)));
}
}  // namespace

ThreadPbpl::ThreadPbpl(std::size_t consumers, const core::PbplConfig& config,
                       BatchHandler handler, fault::FaultInjector* injector,
                       fleet::FleetConfig fleet)
    : config_(config),
      track_(config.resolved_slot_size()),
      epoch_(Clock::now()),
      handler_(std::move(handler)),
      injector_(injector),
      fleet_config_(fleet),
      pool_(std::max<std::size_t>(consumers, 1), config.base_buffer, config.pool_segment) {
  PCPC_ASSERT_MSG(consumers > 0, "need at least one consumer");
  PCPC_ASSERT_MSG(config.cores > 0, "need at least one core");

  // The cost model must price the schedule this runtime actually
  // executes, so the workload-shape fields come from the live config (the
  // caller supplies only the controller policy and the power price book).
  fleet_config_.cost.slot = config_.resolved_slot_size();
  fleet_config_.cost.max_latency = config_.max_latency;
  fleet_config_.cost.buffer_items = config_.base_buffer;
  fleet_config_.cost.service = config_.service;
  fleet_config_.cost.manager_overhead = config_.manager_overhead;
  fleet_config_.cost.utilization_cap = config_.utilization_cap;

  // Point the telemetry clock at this run's epoch so fault events (which
  // have no clock of their own) land on the same timeline as the wakeup
  // and slot events.  Captured by value: the session may outlive us.
  if (obs::enabled() && obs::Session::current() != nullptr) {
    obs::Session::current()->set_clock([epoch = epoch_] {
      return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - epoch)
          .count();
    });
  }

  for (std::size_t c = 0; c < config.cores; ++c) {
    cores_.push_back(std::make_unique<Core>());
    cores_.back()->index = c;
  }
  record_budget_ = static_cast<std::size_t>(
      queue::var_record_bytes(config.payload_max_bytes + kStampBytes));
  for (std::size_t i = 0; i < consumers; ++i) {
    auto consumer = std::make_unique<Consumer>();
    consumer->index = i;
    Core* home = cores_[i % cores_.size()].get();
    consumer->core.store(home, std::memory_order_relaxed);
    consumer->buffer = queue::make_pool_handoff<Clock::time_point>(
        config.queue_backend, pool_, static_cast<std::uint32_t>(i));
    if (config.payload_max_bytes > 0) {
      // Varlen record plane (byte-granular analogue of the item pool
      // account): each ring starts at its base share and may grow toward
      // the global bound — consumers × base, mirroring Bg = B0·M.  The
      // per-record bound covers the payload plus the leading stamp word.
      const std::size_t base = std::max(
          config.payload_ring_bytes != 0 ? config.payload_ring_bytes
                                         : config.base_buffer * record_budget_,
          record_budget_);
      consumer->var = queue::make_var_handoff(
          config.queue_backend, base, base * consumers,
          static_cast<std::uint32_t>(config.payload_max_bytes + kStampBytes));
    }
    consumer->predictor = core::make_predictor(config.predictor, config.predictor_window);
    if (config.latency_guard) consumer->guard.emplace(config.max_latency);
    home->consumers.push_back(consumer.get());
    consumers_.push_back(std::move(consumer));
  }

  // Fault-injected pool pressure: Bg = B0·M leaves nothing free after
  // every consumer took its base allotment, so pressure shrinks the
  // consumers' buffers toward one segment and seizes the freed capacity.
  if (injector_ != nullptr) {
    const std::size_t want = injector_->pressure_segments(pool_.total_segments());
    if (want > 0) {
      seized_segments_ = pool_.seize_segments(want);
      for (auto& consumer : consumers_) {
        if (seized_segments_ >= want) break;
        consumer->buffer->resize(1);
        seized_segments_ += pool_.seize_segments(want - seized_segments_);
      }
      injector_->note_seized(seized_segments_);
    }
  }

  for (auto& core : cores_) {
    std::unique_lock lock(core->mutex);
    const SimTime now = now_ns();
    for (Consumer* consumer : core->consumers) {
      consumer->last_invocation = now;
      make_reservation_locked(*core, *consumer, now);
    }
  }
  for (auto& core : cores_) {
    core->thread = std::thread([this, core = core.get()] { manager_loop(*core); });
  }
  if (fleet_config_.mode == fleet::FleetMode::kElastic) {
    controller_.emplace(consumers_.size(), cores_.size(), fleet_config_);
    fleet_thread_ = std::thread([this] { fleet_loop(); });
  }
}

ThreadPbpl::~ThreadPbpl() { stop(); }

void ThreadPbpl::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // The fleet thread goes first: once it is joined, no migration, park or
  // unpark can run concurrently with the manager joins below, and any
  // manager its final tick unparked was respawned before the join
  // returned (so the loop below sees the thread as joinable).
  {
    std::lock_guard<std::mutex> lock(fleet_mutex_);
    fleet_cv_.notify_all();
  }
  if (fleet_thread_.joinable()) fleet_thread_.join();
  for (auto& core : cores_) {
    std::lock_guard<std::mutex> lock(core->mutex);
    core->cv.notify_all();
    core->producer_cv.notify_all();
  }
  for (auto& core : cores_) {
    if (core->thread.joinable()) core->thread.join();
  }
  // Final drain: account leftovers without extra wakeups.  Handlers keep
  // their no-lock contract even though the managers are gone.
  for (auto& core : cores_) {
    std::unique_lock lock(core->mutex);
    core->pending.clear();
    for (Consumer* consumer : core->consumers) {
      const auto drained_at = Clock::now();
      const std::size_t batch = consumer->buffer->drain([&](Clock::time_point stamp) {
        core->stats.latency_s.add(
            std::chrono::duration<double>(drained_at - stamp).count());
      });
      // Varlen leftovers drain the same way: claim the views here, hand
      // them to the record handler below (no lock), release after.
      std::vector<queue::VarRecordView> records;
      std::uint64_t var_release = 0;
      if (consumer->var != nullptr) {
        while (auto view = consumer->var->claim_front()) {
          core->stats.latency_s.add(
              std::chrono::duration<double>(drained_at - record_stamp(view->data))
                  .count());
          core->stats.consumed_bytes += view->size - kStampBytes;
          records.push_back(*view);
        }
        var_release = consumer->var->claim_offset();
        consumer->var_inflight = true;
      }
      const std::size_t total = batch + records.size();
      if (total > 0) {
        core->stats.items += total;
        core->stats.batch_sizes.add(static_cast<double>(total));
        ++core->stats.invocations;
        // The ledger must see these items too (no wake is minted, so the
        // paid/free identities are untouched): without this, attribution's
        // Σ pair items would fall short of the runtime's own item total by
        // exactly the leftovers drained here.
        obs::note_slot_batch(static_cast<std::uint16_t>(core->index),
                             static_cast<std::uint32_t>(consumer->index), obs::kNoSlot,
                             total, now_ns(), 0);
      }
      if (total > 0 || consumer->var_inflight) {
        core->pending.push_back({consumer, total, obs::kNoSlot, now_ns(), drained_at,
                                 {}, std::move(records), var_release});
      }
    }
    if ((handler_ || record_handler_) && !core->pending.empty()) {
      lock.unlock();
      for (const PendingBatch& p : core->pending) {
        if (handler_ && p.batch > 0) handler_(p.consumer->index, p.batch);
        if (record_handler_) {
          for (const queue::VarRecordView& v : p.records) {
            record_handler_(p.consumer->index,
                            std::span<const std::byte>(v.data + kStampBytes,
                                                       v.size - kStampBytes));
          }
        }
      }
      lock.lock();
    }
    for (const PendingBatch& p : core->pending) {
      if (p.consumer->var != nullptr && p.consumer->var_inflight) {
        p.consumer->var->release_until(p.var_release);
        p.consumer->var_inflight = false;
      }
    }
    core->pending.clear();
  }
  if (seized_segments_ > 0) {
    pool_.restore_segments(seized_segments_);
    seized_segments_ = 0;
  }
}

void ThreadPbpl::produce(std::size_t consumer_index) {
  std::size_t items = 1;
  if (injector_ != nullptr) {
    // Producer faults happen on the producer's own thread, outside any
    // lock: a stall really does delay the delivery, and a burst really
    // does arrive as one back-to-back volley.
    if (const SimDuration stall = injector_->producer_stall(); stall > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(stall));
    }
    items += injector_->burst_items();
  }
  PCPC_ASSERT(consumer_index < consumers_.size());
  Consumer& consumer = *consumers_[consumer_index];
  if (items == 1) {
    push_one(consumer);
  } else {
    push_volley(consumer, items);
  }
}

void ThreadPbpl::push_one(Consumer& consumer) {
  produced_.fetch_add(1, std::memory_order_relaxed);
  // Span labels read the owner once; a mid-push migration can at worst
  // mislabel the recording core of a sampled span (the pinned counters
  // never come from spans).
  const std::uint16_t core_hint =
      static_cast<std::uint16_t>(consumer.core.load(std::memory_order_relaxed)->index);
  // Sampled lifecycle span (1-in-N): claim this item's admission
  // position; a sampled item stamps produce before the push and enqueue
  // after it.  Unsampled items pay one relaxed load + one relaxed
  // fetch_add, nothing else.
  const std::uint64_t span_every = obs::span_sample_every();
  std::uint64_t span_id = 0;
  bool span = false;
  if (span_every != 0) {
    const std::uint64_t seq =
        consumer.span_produce_seq.fetch_add(1, std::memory_order_relaxed);
    if (seq % span_every == 0) {
      span = true;
      span_id = span_item_id(consumer.index, seq);
      obs::note_item_stage(static_cast<std::uint32_t>(consumer.index), core_hint, span_id,
                           obs::ItemStage::kProduce, now_ns());
    }
  }
  const auto stamp = Clock::now();
  // Lock-free fast path: with an SPSC/MPSC backend a successful push
  // never touches any runtime lock — this is the whole point of the
  // pluggable backends.  The running_ check narrows (but cannot close)
  // the stop() race window; items pushed after the final drain are swept
  // into dropped_on_stop by stats(), keeping the accounting identity.
  // Migration never invalidates a fast-path push: the buffer travels with
  // the consumer, so an item landed here is drained wherever it ends up.
  if (consumer.buffer->lock_free() && running_.load(std::memory_order_acquire) &&
      consumer.buffer->try_push(stamp)) {
    if (span) {
      obs::note_item_stage(static_cast<std::uint32_t>(consumer.index), core_hint,
                           span_id, obs::ItemStage::kEnqueue, now_ns());
    }
    return;
  }
  // Slow path: resolve the owning core, lock it, and re-check ownership
  // under the lock — a concurrent migration retargets consumer.core
  // before touching destination state, so a stale owner is detected here
  // and the push retries on the new one.
  for (;;) {
    Core* core = consumer.core.load(std::memory_order_acquire);
    std::unique_lock lock(core->mutex);
    if (consumer.core.load(std::memory_order_relaxed) != core) continue;
    if (push_one_slow_locked(*core, consumer, stamp, lock)) break;
  }
  if (span) {
    obs::note_item_stage(static_cast<std::uint32_t>(consumer.index), core_hint, span_id,
                         obs::ItemStage::kEnqueue, now_ns());
  }
}

void ThreadPbpl::push_volley(Consumer& consumer, std::size_t items) {
  // Fault-injected burst volley: ONE timestamp per admitted chunk, not
  // per item — a volley arrives back-to-back, so the chunk's stamp
  // bounds every member's true enqueue time to within the admission
  // itself, while removing the clock read that used to dominate the
  // burst path.  Admission goes through try_push_bulk — one tail
  // publication / admission claim per chunk.  Whatever the bulk path
  // rejects falls through to the per-item overflow slow path under the
  // owning core's lock, so every overflow policy and the
  // produced == items + dropped() identity behave exactly as before.
  Clock::time_point chunk[queue::kDrainChunk];
  const std::uint64_t span_every = obs::span_sample_every();
  while (items > 0) {
    const std::size_t n = std::min(items, queue::kDrainChunk);
    items -= n;
    produced_.fetch_add(n, std::memory_order_relaxed);
    // Claim the chunk's admission positions in one add so the drain
    // side's positional counter stays aligned with sampled ids.
    std::uint64_t seq0 = 0;
    if (span_every != 0) {
      seq0 = consumer.span_produce_seq.fetch_add(n, std::memory_order_relaxed);
    }
    const auto stamp = Clock::now();
    std::fill_n(chunk, n, stamp);
    std::size_t accepted = 0;
    if (consumer.buffer->lock_free() && running_.load(std::memory_order_acquire)) {
      accepted = consumer.buffer->try_push_bulk(
          std::span<const Clock::time_point>(chunk, n));
    }
    if (accepted < n) {
      for (std::size_t i = accepted; i < n; ++i) {
        for (;;) {
          Core* core = consumer.core.load(std::memory_order_acquire);
          std::unique_lock lock(core->mutex);
          if (consumer.core.load(std::memory_order_relaxed) != core) continue;
          if (push_one_slow_locked(*core, consumer, chunk[i], lock)) break;
        }
      }
    }
    if (span_every != 0) {
      // Volley items are admitted back-to-back; sampled ones get produce
      // and enqueue stamped together after the chunk lands.
      const auto core_hint = static_cast<std::uint16_t>(
          consumer.core.load(std::memory_order_relaxed)->index);
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t seq = seq0 + i;
        if (seq % span_every != 0) continue;
        const std::uint64_t id = span_item_id(consumer.index, seq);
        const SimTime ts = now_ns();
        obs::note_item_stage(static_cast<std::uint32_t>(consumer.index), core_hint, id,
                             obs::ItemStage::kProduce, ts);
        obs::note_item_stage(static_cast<std::uint32_t>(consumer.index), core_hint, id,
                             obs::ItemStage::kEnqueue, ts);
      }
    }
  }
}

bool ThreadPbpl::push_one_slow_locked(Core& core, Consumer& consumer,
                                      Clock::time_point stamp,
                                      std::unique_lock<std::mutex>& lock) {
  if (!running_.load(std::memory_order_relaxed)) {
    // The runtime already stopped: nothing will ever drain this item.
    // Count it instead of losing it silently.
    ++core.stats.dropped_on_stop;
    obs::note_drop(static_cast<std::uint32_t>(consumer.index), obs::DropPath::kOnStop,
                   now_ns());
    return true;
  }
  if (consumer.buffer->try_push(stamp)) return true;

  // Pre-emptive borrow: EmergencyBorrow always tries the pool first, and
  // the legacy emergency_borrow flag keeps its "borrow before waking"
  // semantics under every policy.
  if (config_.overflow_policy == core::OverflowPolicy::EmergencyBorrow ||
      config_.emergency_borrow) {
    const std::size_t extra = std::max<std::size_t>(1, consumer.buffer->capacity() / 4);
    consumer.buffer->resize(consumer.buffer->capacity() + extra);
    if (consumer.buffer->try_push(stamp)) {
      ++core.stats.emergency_borrows;
      obs::note_overflow(static_cast<std::uint16_t>(core.index),
                         static_cast<std::uint32_t>(consumer.index),
                         obs::OverflowAction::kEmergencyBorrow, now_ns());
      return true;
    }
  }

  switch (config_.overflow_policy) {
    case core::OverflowPolicy::DropOldest: {
      // Evict-then-insert.  With the Mutex backend the first iteration
      // always succeeds (evicting under the lock is exact).  With a
      // lock-free backend, concurrent producers can steal the freed
      // admission between our pop and push, so retry a bounded number of
      // evictions and fall back to rejecting the incoming item — every
      // branch keeps produced == items + dropped() exact.
      for (int attempt = 0; attempt < 16; ++attempt) {
        if (consumer.buffer->try_pop().has_value()) {
          ++core.stats.dropped_oldest;
          obs::note_drop(static_cast<std::uint32_t>(consumer.index),
                         obs::DropPath::kOldest, now_ns());
        }
        if (consumer.buffer->try_push(stamp)) return true;
      }
      ++core.stats.dropped_newest;
      obs::note_drop(static_cast<std::uint32_t>(consumer.index), obs::DropPath::kNewest,
                     now_ns());
      return true;
    }
    case core::OverflowPolicy::DropNewest:
      ++core.stats.dropped_newest;
      obs::note_drop(static_cast<std::uint32_t>(consumer.index), obs::DropPath::kNewest,
                     now_ns());
      return true;
    case core::OverflowPolicy::Block:
    case core::OverflowPolicy::EmergencyBorrow:
      // Forced drain: hand the wakeup to the owning core's manager and
      // wait for space (this is the unscheduled overflow wakeup).  The
      // request is raised once per outstanding drain — a spurious wake of
      // this producer must not be double-counted as a second overflow —
      // and re-armed only after the manager consumed the previous one.
      // running_ is re-checked BEFORE every push retry: a producer woken
      // by stop() may reacquire the lock after the final drain already
      // emptied the buffer, and a successful push at that point would
      // land in a buffer nothing will ever drain again.
      for (;;) {
        if (!running_.load(std::memory_order_relaxed)) {
          // stop() raced our wait; the manager is gone and the final
          // drain will not see this item.  Account the loss.
          ++core.stats.dropped_on_stop;
          obs::note_drop(static_cast<std::uint32_t>(consumer.index),
                         obs::DropPath::kOnStop, now_ns());
          return true;
        }
        if (consumer.buffer->try_push(stamp)) return true;
        if (consumer.overflow_requests == 0) {
          ++consumer.overflow_requests;
          core.overflow_pending = true;
          obs::note_overflow(static_cast<std::uint16_t>(core.index),
                             static_cast<std::uint32_t>(consumer.index),
                             obs::OverflowAction::kForcedDrain, now_ns());
          core.cv.notify_all();
        }
        core.producer_cv.wait(lock);
        if (consumer.core.load(std::memory_order_relaxed) != &core) {
          // Migrated away while we slept (migrate() wakes this cv).  The
          // outstanding overflow request travelled with the consumer —
          // the destination's manager will consume it — so don't re-raise
          // here; just retry the push against the new owner.
          return false;
        }
      }
  }
  return true;
}

void ThreadPbpl::produce_record(std::size_t consumer, std::span<const std::byte> payload) {
  auto ref = reserve_record(consumer, payload.size());
  if (!ref.has_value()) return;  // dropped under a drop policy (accounted)
  std::memcpy(ref->payload.data(), payload.data(), payload.size());
  commit_record(consumer, *ref);
}

std::optional<ThreadPbpl::RecordRef> ThreadPbpl::reserve_record(
    std::size_t consumer_index, std::size_t bytes) {
  PCPC_ASSERT(consumer_index < consumers_.size());
  Consumer& consumer = *consumers_[consumer_index];
  PCPC_ASSERT_MSG(consumer.var != nullptr, "varlen plane is off (payload_max_bytes=0)");
  PCPC_ASSERT_MSG(bytes <= config_.payload_max_bytes, "payload above payload_max_bytes");
  produced_.fetch_add(1, std::memory_order_relaxed);
  produced_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  const auto record_bytes = static_cast<std::uint32_t>(bytes + kStampBytes);
  queue::VarReservation res;
  // Lock-free fast path, like push_one: a successful reserve on an
  // SPSC/MPSC ring never touches any runtime lock.
  if (consumer.var->lock_free() && running_.load(std::memory_order_acquire) &&
      consumer.var->try_reserve(record_bytes, res)) {
    return RecordRef{std::span<std::byte>(res.data + kStampBytes, bytes), res};
  }
  bool reserved = false;
  for (;;) {
    Core* core = consumer.core.load(std::memory_order_acquire);
    std::unique_lock lock(core->mutex);
    if (consumer.core.load(std::memory_order_relaxed) != core) continue;
    if (reserve_slow_locked(*core, consumer, record_bytes, res, reserved, lock)) break;
  }
  if (!reserved) return std::nullopt;
  return RecordRef{std::span<std::byte>(res.data + kStampBytes, bytes), res};
}

void ThreadPbpl::commit_record(std::size_t consumer_index, RecordRef& ref) {
  PCPC_ASSERT(consumer_index < consumers_.size());
  Consumer& consumer = *consumers_[consumer_index];
  // The stamp word makes the record self-timing: the drain side reads it
  // back for the latency account without any side channel.
  const std::int64_t stamp_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                    Clock::now().time_since_epoch())
                                    .count();
  std::memcpy(ref.res.data, &stamp_ns, sizeof stamp_ns);
  if (consumer.var->lock_free()) {
    consumer.var->commit(ref.res);  // in-process: the lease cannot be lost
  } else {
    for (;;) {
      Core* core = consumer.core.load(std::memory_order_acquire);
      std::unique_lock lock(core->mutex);
      if (consumer.core.load(std::memory_order_relaxed) != core) continue;
      consumer.var->commit(ref.res);
      break;
    }
  }
  // Sampled lifecycle span: records claim their admission position at
  // commit (dropped records never claim one, so the drain side's
  // positional counter stays aligned), produce+enqueue stamped together.
  const std::uint64_t span_every = obs::span_sample_every();
  if (span_every != 0) {
    const std::uint64_t seq =
        consumer.span_produce_seq.fetch_add(1, std::memory_order_relaxed);
    if (seq % span_every == 0) {
      const auto core_hint = static_cast<std::uint16_t>(
          consumer.core.load(std::memory_order_relaxed)->index);
      const std::uint64_t id = span_item_id(consumer.index, seq);
      const SimTime ts = now_ns();
      obs::note_item_stage(static_cast<std::uint32_t>(consumer.index), core_hint, id,
                           obs::ItemStage::kProduce, ts);
      obs::note_item_stage(static_cast<std::uint32_t>(consumer.index), core_hint, id,
                           obs::ItemStage::kEnqueue, ts);
    }
  }
}

bool ThreadPbpl::reserve_slow_locked(Core& core, Consumer& consumer,
                                     std::uint32_t record_bytes,
                                     queue::VarReservation& out, bool& reserved,
                                     std::unique_lock<std::mutex>& lock) {
  const std::uint64_t payload = record_bytes - kStampBytes;
  reserved = false;
  if (!running_.load(std::memory_order_relaxed)) {
    ++core.stats.dropped_on_stop;
    core.stats.dropped_bytes += payload;
    obs::note_drop(static_cast<std::uint32_t>(consumer.index), obs::DropPath::kOnStop,
                   now_ns());
    return true;
  }
  if (consumer.var->try_reserve(record_bytes, out)) {
    reserved = true;
    return true;
  }

  // Pre-emptive borrow, at byte granularity: the varlen plane has no
  // segment pool, so the borrow grows the ring toward its global bound.
  if (config_.overflow_policy == core::OverflowPolicy::EmergencyBorrow ||
      config_.emergency_borrow) {
    const std::size_t cap = consumer.var->capacity_bytes();
    consumer.var->resize_bytes(cap + std::max(record_budget_, cap / 4));
    if (consumer.var->try_reserve(record_bytes, out)) {
      ++core.stats.emergency_borrows;
      obs::note_overflow(static_cast<std::uint16_t>(core.index),
                         static_cast<std::uint32_t>(consumer.index),
                         obs::OverflowAction::kEmergencyBorrow, now_ns());
      reserved = true;
      return true;
    }
  }

  switch (config_.overflow_policy) {
    case core::OverflowPolicy::DropOldest: {
      // Evict-then-reserve at record granularity.  drop_oldest only
      // *marks* the head record reclaimed (advancing the claim cursor);
      // the bytes return to producers at a release — which we can do
      // right here, under the consumer-side lock, UNLESS zero-copy views
      // from the last drain are still out with the handlers (they pin
      // the released cursor).  In that case eviction cannot free space
      // in time, so reject the incoming record — every branch keeps the
      // produced == items + dropped() identity exact.
      for (int attempt = 0; attempt < 16; ++attempt) {
        std::uint64_t footprint = 0;
        std::uint32_t dropped_payload = 0;
        if (consumer.var->drop_oldest(footprint, dropped_payload)) {
          ++core.stats.dropped_oldest;
          core.stats.dropped_bytes += dropped_payload - kStampBytes;
          obs::note_drop(static_cast<std::uint32_t>(consumer.index),
                         obs::DropPath::kOldest, now_ns());
        }
        if (!consumer.var_inflight) {
          consumer.var->release_until(consumer.var->claim_offset());
        }
        if (consumer.var->try_reserve(record_bytes, out)) {
          reserved = true;
          return true;
        }
        if (consumer.var_inflight) break;
      }
      ++core.stats.dropped_newest;
      core.stats.dropped_bytes += payload;
      obs::note_drop(static_cast<std::uint32_t>(consumer.index), obs::DropPath::kNewest,
                     now_ns());
      return true;
    }
    case core::OverflowPolicy::DropNewest:
      ++core.stats.dropped_newest;
      core.stats.dropped_bytes += payload;
      obs::note_drop(static_cast<std::uint32_t>(consumer.index), obs::DropPath::kNewest,
                     now_ns());
      return true;
    case core::OverflowPolicy::Block:
    case core::OverflowPolicy::EmergencyBorrow:
      // Forced drain + wait, exactly like the item path.  Space frees
      // only once run_handlers releases the drained views, which is
      // where the wake comes from.
      for (;;) {
        if (!running_.load(std::memory_order_relaxed)) {
          ++core.stats.dropped_on_stop;
          core.stats.dropped_bytes += payload;
          obs::note_drop(static_cast<std::uint32_t>(consumer.index),
                         obs::DropPath::kOnStop, now_ns());
          return true;
        }
        if (consumer.var->try_reserve(record_bytes, out)) {
          reserved = true;
          return true;
        }
        if (consumer.overflow_requests == 0) {
          ++consumer.overflow_requests;
          core.overflow_pending = true;
          obs::note_overflow(static_cast<std::uint16_t>(core.index),
                             static_cast<std::uint32_t>(consumer.index),
                             obs::OverflowAction::kForcedDrain, now_ns());
          core.cv.notify_all();
        }
        core.producer_cv.wait(lock);
        if (consumer.core.load(std::memory_order_relaxed) != &core) {
          return false;  // migrated away; retry on the new owner
        }
      }
  }
  return true;
}

ThreadPbplStats ThreadPbpl::stats() {
  ThreadPbplStats out;
  const bool stopped = !running_.load(std::memory_order_acquire);
  for (auto& core : cores_) {
    std::unique_lock lock(core->mutex);
    if (stopped) {
      // Post-stop residual sweep: a lock-free producer that read running_
      // just before stop() flipped it may have landed an item after the
      // final drain.  Nothing will ever consume it, so account it here —
      // the caller joined its producers first (see the header contract).
      for (Consumer* consumer : core->consumers) {
        const std::size_t swept = consumer->buffer->drain([&](Clock::time_point) {
          obs::note_drop(static_cast<std::uint32_t>(consumer->index),
                         obs::DropPath::kOnStop, now_ns());
        });
        core->stats.dropped_on_stop += swept;
        if (consumer->var != nullptr) {
          const std::size_t var_swept =
              consumer->var->drain_records([&](std::span<const std::byte> payload) {
                core->stats.dropped_bytes += payload.size() - kStampBytes;
                obs::note_drop(static_cast<std::uint32_t>(consumer->index),
                               obs::DropPath::kOnStop, now_ns());
              });
          core->stats.dropped_on_stop += var_swept;
        }
      }
    }
    out.merge(core->stats);
  }
  out.produced = produced_.load(std::memory_order_relaxed);
  out.produced_bytes = produced_bytes_.load(std::memory_order_relaxed);
  out.pool_exhausted = pool_.exhausted_grants();
  out.migrations = migrations_.load(std::memory_order_relaxed);
  out.core_parks = parks_.load(std::memory_order_relaxed);
  out.core_unparks = unparks_.load(std::memory_order_relaxed);
  return out;
}

std::vector<std::size_t> ThreadPbpl::placement() const {
  std::vector<std::size_t> out(consumers_.size());
  for (std::size_t i = 0; i < consumers_.size(); ++i) {
    out[i] = consumers_[i]->core.load(std::memory_order_acquire)->index;
  }
  return out;
}

std::vector<bool> ThreadPbpl::parked_cores() const {
  std::vector<bool> out(cores_.size());
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    out[c] = cores_[c]->parked.load(std::memory_order_acquire);
  }
  return out;
}

bool ThreadPbpl::migrate(std::size_t consumer_index, std::size_t core_index) {
  PCPC_ASSERT(consumer_index < consumers_.size());
  PCPC_ASSERT(core_index < cores_.size());
  Consumer& consumer = *consumers_[consumer_index];
  Core& dst = *cores_[core_index];
  if (!running_.load(std::memory_order_acquire)) return false;
  if (consumer.core.load(std::memory_order_acquire) == &dst) return true;
  // The destination needs a live manager before any reservation lands on
  // its track.  Unpark is ordered before the lock pair: spawning a thread
  // under two core locks would invert the (fleet → core) lock hierarchy.
  unpark(dst);
  for (;;) {
    Core* src = consumer.core.load(std::memory_order_acquire);
    if (src == &dst) return true;
    // Quiesce: both shards locked, in index order (the only place two
    // core locks are ever held together, so the hierarchy is trivially
    // acyclic).  Holding both means no manager is mid-drain on the pair
    // and no producer is mid-slow-path on either side.
    Core& first = src->index < dst.index ? *src : dst;
    Core& second = src->index < dst.index ? dst : *src;
    std::unique_lock lock_first(first.mutex);
    std::unique_lock lock_second(second.mutex);
    if (consumer.core.load(std::memory_order_relaxed) != src) continue;
    if (!running_.load(std::memory_order_relaxed)) return false;
    if (consumer.var != nullptr && consumer.var_inflight) {
      // Zero-copy views from this pair's last drain are still out with
      // src's handlers; the release must stay on the manager that
      // claimed them (run_handlers clears the flag under src's lock).
      // Handler runs are short: back off and retry.
      lock_second.unlock();
      lock_first.unlock();
      std::this_thread::yield();
      continue;
    }

    auto& members = src->consumers;
    members.erase(std::remove(members.begin(), members.end(), &consumer), members.end());
    src->reservations.cancel(static_cast<core::ConsumerId>(consumer.index));
    dst.consumers.push_back(&consumer);
    // Publish the new owner BEFORE any waiter can run: producers blocked
    // on src's producer_cv re-check this pointer on wake and retry on
    // dst; fast-path producers that already pushed lose nothing because
    // the buffer travelled with the consumer.
    consumer.core.store(&dst, std::memory_order_release);
    if (consumer.overflow_requests > 0) {
      // A blocked producer's forced-drain request moves with the pair.
      dst.overflow_pending = true;
    }
    const SimTime now = now_ns();
    make_reservation_locked(dst, consumer, now);
    migrations_.fetch_add(1, std::memory_order_relaxed);
    obs::note_fleet(obs::FleetAction::kMigrate,
                    static_cast<std::uint32_t>(consumer.index),
                    static_cast<std::uint16_t>(src->index),
                    static_cast<std::uint16_t>(dst.index), now);
    // Wake everyone whose wait predicate just changed: src's manager
    // (its earliest reservation may be gone), src's blocked producers
    // (must re-resolve the owner), dst's manager (new reservation —
    // already notified by make_reservation_locked, repeated for clarity).
    src->cv.notify_all();
    src->producer_cv.notify_all();
    dst.cv.notify_all();
    return true;
  }
}

bool ThreadPbpl::try_park(Core& core) {
  if (core.parked.load(std::memory_order_acquire)) return false;
  {
    std::unique_lock lock(core.mutex);
    if (core.retired || !core.consumers.empty() || core.overflow_pending ||
        !core.pending.empty()) {
      return false;
    }
    if (core.reservations.next_reserved(kMinSlot).has_value()) return false;
    if (!running_.load(std::memory_order_relaxed)) return false;
    core.retired = true;
    core.cv.notify_all();
  }
  // Join outside the lock (the manager needs it to exit its loop).
  core.thread.join();
  core.parked.store(true, std::memory_order_release);
  parks_.fetch_add(1, std::memory_order_relaxed);
  obs::note_fleet(obs::FleetAction::kPark, obs::kNoConsumer,
                  static_cast<std::uint16_t>(core.index),
                  static_cast<std::uint16_t>(core.index), now_ns());
  return true;
}

void ThreadPbpl::unpark(Core& core) {
  if (!core.parked.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lock(core.mutex);
    core.retired = false;
  }
  core.thread = std::thread([this, c = &core] { manager_loop(*c); });
  core.parked.store(false, std::memory_order_release);
  unparks_.fetch_add(1, std::memory_order_relaxed);
  obs::note_fleet(obs::FleetAction::kUnpark, obs::kNoConsumer,
                  static_cast<std::uint16_t>(core.index),
                  static_cast<std::uint16_t>(core.index), now_ns());
}

void ThreadPbpl::fleet_loop() {
  std::unique_lock lock(fleet_mutex_);
  while (running_.load(std::memory_order_relaxed)) {
    fleet_cv_.wait_for(lock,
                       std::chrono::nanoseconds(fleet_config_.control_period));
    if (!running_.load(std::memory_order_relaxed)) break;
    lock.unlock();
    fleet_tick();
    lock.lock();
  }
}

void ThreadPbpl::fleet_tick() {
  const SimTime now = now_ns();
  std::vector<std::uint64_t> drained(consumers_.size());
  for (std::size_t i = 0; i < consumers_.size(); ++i) {
    drained[i] = consumers_[i]->drained_items.load(std::memory_order_relaxed);
  }
  controller_->observe(now, drained);
  const fleet::FleetPlan plan = controller_->plan(now, placement());
  for (const fleet::FleetMove& move : plan.moves) {
    if (!migrate(move.pair, move.to)) return;  // runtime stopping
  }
  // Park pass: any core the plan (or startup skew) left empty retires its
  // manager thread until a future migration needs it back.
  for (auto& core : cores_) try_park(*core);
}

SimTime ThreadPbpl::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - epoch_)
      .count();
}

Clock::time_point ThreadPbpl::slot_deadline(core::SlotIndex slot) {
  SimDuration jitter = 0;
  if (injector_ != nullptr) jitter = injector_->deadline_jitter();
  return epoch_ + std::chrono::nanoseconds(track_.start_of(slot) + jitter);
}

void ThreadPbpl::manager_loop(Core& core) {
  std::unique_lock lock(core.mutex);
  while (running_.load(std::memory_order_relaxed)) {
    // Parking: the fleet thread retires an empty core's manager; the
    // thread is respawned (and this flag cleared) on unpark.
    if (core.retired) break;
    // Forced (overflow) drains take priority over the slot schedule.
    if (core.overflow_pending) {
      core.overflow_pending = false;
      {
        const ScopedCpuTimer timer(core.stats.manager_cpu_ns);
        bool first = true;
        for (Consumer* consumer : core.consumers) {
          if (consumer->overflow_requests == 0) continue;
          consumer->overflow_requests = 0;
          ++core.stats.overflow_wakeups;
          core.reservations.cancel(static_cast<core::ConsumerId>(consumer->index));
          drain_locked(core, *consumer, now_ns(), obs::kNoSlot, first,
                       /*scheduled=*/false);
          first = false;
        }
      }
      // Space is free the moment the drains are done: wake blocked
      // producers BEFORE the handlers run, they can refill meanwhile.
      core.producer_cv.notify_all();
      run_handlers(core, lock);
      continue;
    }

    const auto next = core.reservations.next_reserved(kMinSlot);
    if (!next.has_value()) {
      core.cv.wait(lock);
      continue;
    }
    const auto deadline = slot_deadline(*next);
    if (core.cv.wait_until(lock, deadline) != std::cv_status::timeout) {
      continue;  // stop, overflow, or a spurious wake: re-evaluate
    }

    const SimTime now = now_ns();

    // Deadline watchdog: the slot fired more than k·Δ late (a slow
    // handler, fault injection, or scheduler starvation stalled this
    // manager).  Waiting out the normal latching path would compound the
    // overrun, so escalate: drain every consumer on the core right now
    // and rebuild the schedule from fresh predictions.
    if (config_.watchdog_factor > 0.0) {
      const auto limit = static_cast<SimDuration>(
          config_.watchdog_factor * static_cast<double>(config_.resolved_slot_size()));
      if (now - track_.start_of(*next) > limit) {
        ++core.stats.missed_deadlines;
        ++core.stats.scheduled_wakeups;
        obs::note_watchdog(static_cast<std::uint16_t>(core.index),
                           now - track_.start_of(*next), now);
        {
          const ScopedCpuTimer timer(core.stats.manager_cpu_ns);
          core.overflow_pending = false;
          bool first = true;
          for (Consumer* consumer : core.consumers) {
            consumer->overflow_requests = 0;
            core.reservations.cancel(static_cast<core::ConsumerId>(consumer->index));
            drain_locked(core, *consumer, now, *next, first, /*scheduled=*/true);
            first = false;
          }
        }
        core.producer_cv.notify_all();
        run_handlers(core, lock);
        continue;
      }
    }

    // The slot fired: one scheduled wakeup serves every consumer
    // registered for it (the latching group).
    ++core.stats.scheduled_wakeups;
    {
      const ScopedCpuTimer timer(core.stats.manager_cpu_ns);
      const auto ids = core.reservations.take_slot(*next);
      bool first = true;
      for (const core::ConsumerId id : ids) {
        drain_locked(core, *consumers_[id], now, *next, first, /*scheduled=*/true);
        first = false;
      }
    }
    run_handlers(core, lock);
  }
}

void ThreadPbpl::drain_locked(Core& core, Consumer& consumer, SimTime now,
                              std::int64_t slot, bool paid, bool scheduled) {
  obs::note_wakeup(static_cast<std::uint16_t>(core.index),
                   static_cast<std::uint32_t>(consumer.index), slot, paid, scheduled,
                   now);
  const auto drained_at = Clock::now();
  const std::uint64_t violations_before =
      consumer.guard ? consumer.guard->violations() : 0;
  // Positional span sampling, consumer side: count drained positions and
  // reconstruct the sampled producer ids.  The drain-start stamp shares
  // `now` with the note_wakeup above, so the fold's wake join (inclusive
  // ≤ bound) attributes these spans to exactly this wakeup.
  const std::uint64_t span_every = obs::span_sample_every();
  std::vector<std::uint64_t> sampled;
  // Bulk drain: chunked pop_bulk instead of one virtual try_pop per item
  // (and, on the lock-free backends, one head publication per chunk).
  const std::size_t batch = consumer.buffer->drain([&](Clock::time_point stamp) {
    const auto latency = drained_at - stamp;
    core.stats.latency_s.add(std::chrono::duration<double>(latency).count());
    if (consumer.guard) {
      consumer.guard->observe(
          std::chrono::duration_cast<std::chrono::nanoseconds>(latency).count());
    }
    if (span_every != 0) {
      const std::uint64_t seq = consumer.span_drain_seq++;
      if (seq % span_every == 0) {
        sampled.push_back(span_item_id(consumer.index, seq));
      }
    }
  });
  // Varlen plane: claim every committed record as a zero-copy view (the
  // scatter-free drain).  Claiming under the lock is cheap — no bytes
  // move; the handler reads the views outside the lock in run_handlers,
  // and only then is the byte range released back to producers.
  std::vector<queue::VarRecordView> records;
  std::uint64_t var_release = 0;
  std::uint64_t record_payload = 0;
  if (consumer.var != nullptr) {
    while (auto view = consumer.var->claim_front()) {
      PCPC_ASSERT_MSG(view->size >= kStampBytes, "runtime record below stamp size");
      const auto latency = drained_at - record_stamp(view->data);
      core.stats.latency_s.add(std::chrono::duration<double>(latency).count());
      if (consumer.guard) {
        consumer.guard->observe(
            std::chrono::duration_cast<std::chrono::nanoseconds>(latency).count());
      }
      if (span_every != 0) {
        const std::uint64_t seq = consumer.span_drain_seq++;
        if (seq % span_every == 0) {
          sampled.push_back(span_item_id(consumer.index, seq));
        }
      }
      record_payload += view->size - kStampBytes;
      records.push_back(*view);
    }
    var_release = consumer.var->claim_offset();
    consumer.var_inflight = true;
  }
  const std::size_t total = batch + records.size();
  for (const std::uint64_t id : sampled) {
    obs::note_item_stage(static_cast<std::uint32_t>(consumer.index),
                         static_cast<std::uint16_t>(core.index), id,
                         obs::ItemStage::kDrainStart, now);
  }
  if (consumer.guard) {
    consumer.guard->end_batch();
    core.stats.latency_violations += consumer.guard->violations() - violations_before;
  }
  core.stats.items += total;
  core.stats.consumed_bytes += record_payload;
  core.stats.batch_sizes.add(static_cast<double>(total));
  ++core.stats.invocations;
  if (total > 0) consumer.last_batch = total;
  // Lock-free view for the fleet thread's rate measurement.
  consumer.drained_items.fetch_add(total, std::memory_order_relaxed);

  if (now > consumer.last_invocation) {
    consumer.predictor->observe(static_cast<double>(total) /
                                to_seconds(now - consumer.last_invocation));
    consumer.last_invocation = now;
  }

  make_reservation_locked(core, consumer, now);
  core.pending.push_back({&consumer, total, slot, now, drained_at, std::move(sampled),
                          std::move(records), var_release});
}

void ThreadPbpl::run_handlers(Core& core, std::unique_lock<std::mutex>& lock) {
  if (core.pending.empty()) return;
  // Handler CPU is still manager-thread CPU; the timer's destructor
  // writes the shard after the lock is re-held.
  const ScopedCpuTimer timer(core.stats.manager_cpu_ns);
  lock.unlock();
  for (const PendingBatch& p : core.pending) {
    if (handler_) handler_(p.consumer->index, p.batch);
    if (record_handler_) {
      for (const queue::VarRecordView& v : p.records) {
        record_handler_(p.consumer->index,
                        std::span<const std::byte>(v.data + kStampBytes,
                                                   v.size - kStampBytes));
      }
    }
    if (injector_ != nullptr && p.batch > 0) {
      // Slow-consumer fault: the handler runs long on the manager thread
      // — stalling this core's schedule (and tripping its watchdog), but
      // no lock is held, so producers and other cores keep going.
      if (const SimDuration delay = injector_->handler_delay(); delay > 0) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(delay));
      }
    }
    obs::note_slot_batch(
        static_cast<std::uint16_t>(core.index),
        static_cast<std::uint32_t>(p.consumer->index), p.slot, p.batch, p.now,
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - p.drained_at)
            .count());
    if (!p.sampled.empty()) {
      const SimTime done = now_ns();
      for (const std::uint64_t id : p.sampled) {
        obs::note_item_stage(static_cast<std::uint32_t>(p.consumer->index),
                             static_cast<std::uint16_t>(core.index), id,
                             obs::ItemStage::kHandlerDone, done);
      }
    }
  }
  lock.lock();
  // The handlers are done with their zero-copy views: release each
  // drained byte range in one cursor publication and wake producers
  // blocked on varlen space (for the item plane the manager already
  // notified right after the drain — item space frees at pop, varlen
  // space only here).
  bool released = false;
  for (const PendingBatch& p : core.pending) {
    if (p.consumer->var != nullptr && p.consumer->var_inflight) {
      p.consumer->var->release_until(p.var_release);
      p.consumer->var_inflight = false;
      released = true;
    }
  }
  if (released) core.producer_cv.notify_all();
  core.pending.clear();
}

void ThreadPbpl::make_reservation_locked(Core& core, Consumer& consumer, SimTime now) {
  const double rate = consumer.predictor->predict();
  // With the varlen plane armed, records ARE the items the control
  // plane schedules around: translate the ring's byte capacity into
  // worst-case records (the budget covers payload_max plus the stamp).
  std::size_t capacity;
  if (consumer.var != nullptr) {
    capacity = consumer.var->capacity_bytes() / record_budget_;
  } else {
    capacity = consumer.buffer->capacity();
    if (config_.dynamic_resize) capacity += pool_.free_slots();
  }
  capacity = std::max<std::size_t>(capacity, 1);

  core::SlotQuery query{now, rate, capacity, config_.max_latency,
                        config_.fill_tolerance};
  if (consumer.guard) {
    // Live latency feedback (mirrors the simulation host): a violated
    // batch shrinks both the fill horizon and the zero-rate poll horizon
    // so overload tightens reservations instead of breaking the bound.
    const double scale = consumer.guard->horizon_scale();
    query.fill_tolerance *= scale;
    query.max_latency = std::max<SimDuration>(
        config_.resolved_slot_size(),
        static_cast<SimDuration>(static_cast<double>(config_.max_latency) * scale));
  }
  core::SlotChoice choice =
      config_.latching ? core::choose_slot(track_, core.reservations, query, config_.costs)
                       : core::fill_slot(track_, query, config_.costs);

  if (config_.dynamic_resize && choice.expected_items > 0.0) {
    const auto target = static_cast<std::size_t>(
        std::ceil(choice.expected_items * config_.resize_headroom));
    const std::size_t want = std::max<std::size_t>(target, consumer.last_batch);
    const std::size_t granted =
        consumer.var != nullptr
            ? consumer.var->resize_bytes(want * record_budget_) / record_budget_
            : consumer.buffer->resize(want);
    if (static_cast<double>(granted) < choice.expected_items) {
      query.buffer_capacity = granted;
      choice = config_.latching
                   ? core::choose_slot(track_, core.reservations, query, config_.costs)
                   : core::fill_slot(track_, query, config_.costs);
    }
  }

  core.reservations.reserve(static_cast<core::ConsumerId>(consumer.index), choice.slot);
  ++core.stats.reservations;
  if (choice.latched) ++core.stats.latched_reservations;
  // A new earliest reservation must re-target the manager's wait.
  core.cv.notify_all();
}

}  // namespace pcpc::runtime
