#include "pcpc/runtime/thread_pbpl.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>

#include "pcpc/common/assert.hpp"
#include "pcpc/obs/obs.hpp"
#include "pcpc/runtime/cpu_meter.hpp"

namespace pcpc::runtime {

namespace {
constexpr core::SlotIndex kMinSlot = std::numeric_limits<core::SlotIndex>::min();

/// Sampled-span item id: the pair in the high half, the item's admission
/// position in the low half.  The drain side reconstructs the same id
/// from its own drained-position counter (positional sampling — the
/// buffer carries timestamps only, no per-item tags).
std::uint64_t span_item_id(std::size_t consumer, std::uint64_t seq) {
  return (static_cast<std::uint64_t>(consumer) << 32) | (seq & 0xffffffffu);
}
}  // namespace

ThreadPbpl::ThreadPbpl(std::size_t consumers, const core::PbplConfig& config,
                       BatchHandler handler, fault::FaultInjector* injector)
    : config_(config),
      track_(config.resolved_slot_size()),
      epoch_(Clock::now()),
      handler_(std::move(handler)),
      injector_(injector),
      pool_(std::max<std::size_t>(consumers, 1), config.base_buffer, config.pool_segment) {
  PCPC_ASSERT_MSG(consumers > 0, "need at least one consumer");
  PCPC_ASSERT_MSG(config.cores > 0, "need at least one core");

  // Point the telemetry clock at this run's epoch so fault events (which
  // have no clock of their own) land on the same timeline as the wakeup
  // and slot events.  Captured by value: the session may outlive us.
  if (obs::enabled() && obs::Session::current() != nullptr) {
    obs::Session::current()->set_clock([epoch = epoch_] {
      return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - epoch)
          .count();
    });
  }

  for (std::size_t c = 0; c < config.cores; ++c) {
    cores_.push_back(std::make_unique<Core>());
    cores_.back()->index = c;
  }
  for (std::size_t i = 0; i < consumers; ++i) {
    auto consumer = std::make_unique<Consumer>();
    consumer->index = i;
    consumer->core = cores_[i % cores_.size()].get();
    consumer->buffer = queue::make_pool_handoff<Clock::time_point>(
        config.queue_backend, pool_, static_cast<std::uint32_t>(i));
    consumer->predictor = core::make_predictor(config.predictor, config.predictor_window);
    if (config.latency_guard) consumer->guard.emplace(config.max_latency);
    consumer->core->consumers.push_back(consumer.get());
    consumers_.push_back(std::move(consumer));
  }

  // Fault-injected pool pressure: Bg = B0·M leaves nothing free after
  // every consumer took its base allotment, so pressure shrinks the
  // consumers' buffers toward one segment and seizes the freed capacity.
  if (injector_ != nullptr) {
    const std::size_t want = injector_->pressure_segments(pool_.total_segments());
    if (want > 0) {
      seized_segments_ = pool_.seize_segments(want);
      for (auto& consumer : consumers_) {
        if (seized_segments_ >= want) break;
        consumer->buffer->resize(1);
        seized_segments_ += pool_.seize_segments(want - seized_segments_);
      }
      injector_->note_seized(seized_segments_);
    }
  }

  for (auto& core : cores_) {
    std::unique_lock lock(core->mutex);
    const SimTime now = now_ns();
    for (Consumer* consumer : core->consumers) {
      consumer->last_invocation = now;
      make_reservation_locked(*core, *consumer, now);
    }
  }
  for (auto& core : cores_) {
    core->thread = std::thread([this, core = core.get()] { manager_loop(*core); });
  }
}

ThreadPbpl::~ThreadPbpl() { stop(); }

void ThreadPbpl::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  for (auto& core : cores_) {
    std::lock_guard<std::mutex> lock(core->mutex);
    core->cv.notify_all();
    core->producer_cv.notify_all();
  }
  for (auto& core : cores_) {
    if (core->thread.joinable()) core->thread.join();
  }
  // Final drain: account leftovers without extra wakeups.  Handlers keep
  // their no-lock contract even though the managers are gone.
  for (auto& core : cores_) {
    std::unique_lock lock(core->mutex);
    core->pending.clear();
    for (Consumer* consumer : core->consumers) {
      const auto drained_at = Clock::now();
      const std::size_t batch = consumer->buffer->drain([&](Clock::time_point stamp) {
        core->stats.latency_s.add(
            std::chrono::duration<double>(drained_at - stamp).count());
      });
      if (batch > 0) {
        core->stats.items += batch;
        core->stats.batch_sizes.add(static_cast<double>(batch));
        ++core->stats.invocations;
        // The ledger must see these items too (no wake is minted, so the
        // paid/free identities are untouched): without this, attribution's
        // Σ pair items would fall short of the runtime's own item total by
        // exactly the leftovers drained here.
        obs::note_slot_batch(static_cast<std::uint16_t>(core->index),
                             static_cast<std::uint32_t>(consumer->index), obs::kNoSlot,
                             batch, now_ns(), 0);
        core->pending.push_back({consumer, batch, obs::kNoSlot, now_ns(), drained_at, {}});
      }
    }
    if (handler_ && !core->pending.empty()) {
      lock.unlock();
      for (const PendingBatch& p : core->pending) handler_(p.consumer->index, p.batch);
      lock.lock();
    }
    core->pending.clear();
  }
  if (seized_segments_ > 0) {
    pool_.restore_segments(seized_segments_);
    seized_segments_ = 0;
  }
}

void ThreadPbpl::produce(std::size_t consumer_index) {
  std::size_t items = 1;
  if (injector_ != nullptr) {
    // Producer faults happen on the producer's own thread, outside any
    // lock: a stall really does delay the delivery, and a burst really
    // does arrive as one back-to-back volley.
    if (const SimDuration stall = injector_->producer_stall(); stall > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(stall));
    }
    items += injector_->burst_items();
  }
  PCPC_ASSERT(consumer_index < consumers_.size());
  Consumer& consumer = *consumers_[consumer_index];
  if (items == 1) {
    push_one(consumer);
  } else {
    push_volley(consumer, items);
  }
}

void ThreadPbpl::push_one(Consumer& consumer) {
  produced_.fetch_add(1, std::memory_order_relaxed);
  // Sampled lifecycle span (1-in-N): claim this item's admission
  // position; a sampled item stamps produce before the push and enqueue
  // after it.  Unsampled items pay one relaxed load + one relaxed
  // fetch_add, nothing else.
  const std::uint64_t span_every = obs::span_sample_every();
  std::uint64_t span_id = 0;
  bool span = false;
  if (span_every != 0) {
    const std::uint64_t seq =
        consumer.span_produce_seq.fetch_add(1, std::memory_order_relaxed);
    if (seq % span_every == 0) {
      span = true;
      span_id = span_item_id(consumer.index, seq);
      obs::note_item_stage(static_cast<std::uint32_t>(consumer.index),
                           static_cast<std::uint16_t>(consumer.core->index), span_id,
                           obs::ItemStage::kProduce, now_ns());
    }
  }
  const auto stamp = Clock::now();
  // Lock-free fast path: with an SPSC/MPSC backend a successful push
  // never touches any runtime lock — this is the whole point of the
  // pluggable backends.  The running_ check narrows (but cannot close)
  // the stop() race window; items pushed after the final drain are swept
  // into dropped_on_stop by stats(), keeping the accounting identity.
  if (consumer.buffer->lock_free() && running_.load(std::memory_order_acquire) &&
      consumer.buffer->try_push(stamp)) {
    if (span) {
      obs::note_item_stage(static_cast<std::uint32_t>(consumer.index),
                           static_cast<std::uint16_t>(consumer.core->index), span_id,
                           obs::ItemStage::kEnqueue, now_ns());
    }
    return;
  }
  {
    std::unique_lock lock(consumer.core->mutex);
    push_one_slow_locked(consumer, stamp, lock);
  }
  if (span) {
    obs::note_item_stage(static_cast<std::uint32_t>(consumer.index),
                         static_cast<std::uint16_t>(consumer.core->index), span_id,
                         obs::ItemStage::kEnqueue, now_ns());
  }
}

void ThreadPbpl::push_volley(Consumer& consumer, std::size_t items) {
  // Fault-injected burst volley: every item still reads its own
  // timestamp (identical latency accounting to `items` single pushes),
  // but admission goes through try_push_bulk — one tail publication /
  // admission claim per chunk instead of per item.  Whatever the bulk
  // path rejects falls through to the per-item overflow slow path under
  // the owning core's lock, so every overflow policy and the
  // produced == items + dropped() identity behave exactly as before.
  Clock::time_point chunk[queue::kDrainChunk];
  const std::uint64_t span_every = obs::span_sample_every();
  while (items > 0) {
    const std::size_t n = std::min(items, queue::kDrainChunk);
    items -= n;
    produced_.fetch_add(n, std::memory_order_relaxed);
    // Claim the chunk's admission positions in one add so the drain
    // side's positional counter stays aligned with sampled ids.
    std::uint64_t seq0 = 0;
    if (span_every != 0) {
      seq0 = consumer.span_produce_seq.fetch_add(n, std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < n; ++i) chunk[i] = Clock::now();
    std::size_t accepted = 0;
    if (consumer.buffer->lock_free() && running_.load(std::memory_order_acquire)) {
      accepted = consumer.buffer->try_push_bulk(
          std::span<const Clock::time_point>(chunk, n));
    }
    if (accepted < n) {
      std::unique_lock lock(consumer.core->mutex);
      for (std::size_t i = accepted; i < n; ++i) {
        push_one_slow_locked(consumer, chunk[i], lock);
      }
    }
    if (span_every != 0) {
      // Volley items are admitted back-to-back; sampled ones get produce
      // and enqueue stamped together after the chunk lands.
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t seq = seq0 + i;
        if (seq % span_every != 0) continue;
        const std::uint64_t id = span_item_id(consumer.index, seq);
        const SimTime ts = now_ns();
        obs::note_item_stage(static_cast<std::uint32_t>(consumer.index),
                             static_cast<std::uint16_t>(consumer.core->index), id,
                             obs::ItemStage::kProduce, ts);
        obs::note_item_stage(static_cast<std::uint32_t>(consumer.index),
                             static_cast<std::uint16_t>(consumer.core->index), id,
                             obs::ItemStage::kEnqueue, ts);
      }
    }
  }
}

void ThreadPbpl::push_one_slow_locked(Consumer& consumer, Clock::time_point stamp,
                                      std::unique_lock<std::mutex>& lock) {
  Core& core = *consumer.core;
  if (!running_.load(std::memory_order_relaxed)) {
    // The runtime already stopped: nothing will ever drain this item.
    // Count it instead of losing it silently.
    ++core.stats.dropped_on_stop;
    obs::note_drop(static_cast<std::uint32_t>(consumer.index), obs::DropPath::kOnStop,
                   now_ns());
    return;
  }
  if (consumer.buffer->try_push(stamp)) return;

  // Pre-emptive borrow: EmergencyBorrow always tries the pool first, and
  // the legacy emergency_borrow flag keeps its "borrow before waking"
  // semantics under every policy.
  if (config_.overflow_policy == core::OverflowPolicy::EmergencyBorrow ||
      config_.emergency_borrow) {
    const std::size_t extra = std::max<std::size_t>(1, consumer.buffer->capacity() / 4);
    consumer.buffer->resize(consumer.buffer->capacity() + extra);
    if (consumer.buffer->try_push(stamp)) {
      ++core.stats.emergency_borrows;
      obs::note_overflow(static_cast<std::uint16_t>(core.index),
                         static_cast<std::uint32_t>(consumer.index),
                         obs::OverflowAction::kEmergencyBorrow, now_ns());
      return;
    }
  }

  switch (config_.overflow_policy) {
    case core::OverflowPolicy::DropOldest: {
      // Evict-then-insert.  With the Mutex backend the first iteration
      // always succeeds (evicting under the lock is exact).  With a
      // lock-free backend, concurrent producers can steal the freed
      // admission between our pop and push, so retry a bounded number of
      // evictions and fall back to rejecting the incoming item — every
      // branch keeps produced == items + dropped() exact.
      for (int attempt = 0; attempt < 16; ++attempt) {
        if (consumer.buffer->try_pop().has_value()) {
          ++core.stats.dropped_oldest;
          obs::note_drop(static_cast<std::uint32_t>(consumer.index),
                         obs::DropPath::kOldest, now_ns());
        }
        if (consumer.buffer->try_push(stamp)) return;
      }
      ++core.stats.dropped_newest;
      obs::note_drop(static_cast<std::uint32_t>(consumer.index), obs::DropPath::kNewest,
                     now_ns());
      return;
    }
    case core::OverflowPolicy::DropNewest:
      ++core.stats.dropped_newest;
      obs::note_drop(static_cast<std::uint32_t>(consumer.index), obs::DropPath::kNewest,
                     now_ns());
      return;
    case core::OverflowPolicy::Block:
    case core::OverflowPolicy::EmergencyBorrow:
      // Forced drain: hand the wakeup to the owning core's manager and
      // wait for space (this is the unscheduled overflow wakeup).  The
      // request is raised once per outstanding drain — a spurious wake of
      // this producer must not be double-counted as a second overflow —
      // and re-armed only after the manager consumed the previous one.
      // running_ is re-checked BEFORE every push retry: a producer woken
      // by stop() may reacquire the lock after the final drain already
      // emptied the buffer, and a successful push at that point would
      // land in a buffer nothing will ever drain again.
      for (;;) {
        if (!running_.load(std::memory_order_relaxed)) {
          // stop() raced our wait; the manager is gone and the final
          // drain will not see this item.  Account the loss.
          ++core.stats.dropped_on_stop;
          obs::note_drop(static_cast<std::uint32_t>(consumer.index),
                         obs::DropPath::kOnStop, now_ns());
          return;
        }
        if (consumer.buffer->try_push(stamp)) return;
        if (consumer.overflow_requests == 0) {
          ++consumer.overflow_requests;
          core.overflow_pending = true;
          obs::note_overflow(static_cast<std::uint16_t>(core.index),
                             static_cast<std::uint32_t>(consumer.index),
                             obs::OverflowAction::kForcedDrain, now_ns());
          core.cv.notify_all();
        }
        core.producer_cv.wait(lock);
      }
  }
}

ThreadPbplStats ThreadPbpl::stats() {
  ThreadPbplStats out;
  const bool stopped = !running_.load(std::memory_order_acquire);
  for (auto& core : cores_) {
    std::unique_lock lock(core->mutex);
    if (stopped) {
      // Post-stop residual sweep: a lock-free producer that read running_
      // just before stop() flipped it may have landed an item after the
      // final drain.  Nothing will ever consume it, so account it here —
      // the caller joined its producers first (see the header contract).
      for (Consumer* consumer : core->consumers) {
        const std::size_t swept = consumer->buffer->drain([&](Clock::time_point) {
          obs::note_drop(static_cast<std::uint32_t>(consumer->index),
                         obs::DropPath::kOnStop, now_ns());
        });
        core->stats.dropped_on_stop += swept;
      }
    }
    out.merge(core->stats);
  }
  out.produced = produced_.load(std::memory_order_relaxed);
  out.pool_exhausted = pool_.exhausted_grants();
  return out;
}

SimTime ThreadPbpl::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - epoch_)
      .count();
}

Clock::time_point ThreadPbpl::slot_deadline(core::SlotIndex slot) {
  SimDuration jitter = 0;
  if (injector_ != nullptr) jitter = injector_->deadline_jitter();
  return epoch_ + std::chrono::nanoseconds(track_.start_of(slot) + jitter);
}

void ThreadPbpl::manager_loop(Core& core) {
  std::unique_lock lock(core.mutex);
  while (running_.load(std::memory_order_relaxed)) {
    // Forced (overflow) drains take priority over the slot schedule.
    if (core.overflow_pending) {
      core.overflow_pending = false;
      {
        const ScopedCpuTimer timer(core.stats.manager_cpu_ns);
        bool first = true;
        for (Consumer* consumer : core.consumers) {
          if (consumer->overflow_requests == 0) continue;
          consumer->overflow_requests = 0;
          ++core.stats.overflow_wakeups;
          core.reservations.cancel(static_cast<core::ConsumerId>(consumer->index));
          drain_locked(core, *consumer, now_ns(), obs::kNoSlot, first,
                       /*scheduled=*/false);
          first = false;
        }
      }
      // Space is free the moment the drains are done: wake blocked
      // producers BEFORE the handlers run, they can refill meanwhile.
      core.producer_cv.notify_all();
      run_handlers(core, lock);
      continue;
    }

    const auto next = core.reservations.next_reserved(kMinSlot);
    if (!next.has_value()) {
      core.cv.wait(lock);
      continue;
    }
    const auto deadline = slot_deadline(*next);
    if (core.cv.wait_until(lock, deadline) != std::cv_status::timeout) {
      continue;  // stop, overflow, or a spurious wake: re-evaluate
    }

    const SimTime now = now_ns();

    // Deadline watchdog: the slot fired more than k·Δ late (a slow
    // handler, fault injection, or scheduler starvation stalled this
    // manager).  Waiting out the normal latching path would compound the
    // overrun, so escalate: drain every consumer on the core right now
    // and rebuild the schedule from fresh predictions.
    if (config_.watchdog_factor > 0.0) {
      const auto limit = static_cast<SimDuration>(
          config_.watchdog_factor * static_cast<double>(config_.resolved_slot_size()));
      if (now - track_.start_of(*next) > limit) {
        ++core.stats.missed_deadlines;
        ++core.stats.scheduled_wakeups;
        obs::note_watchdog(static_cast<std::uint16_t>(core.index),
                           now - track_.start_of(*next), now);
        {
          const ScopedCpuTimer timer(core.stats.manager_cpu_ns);
          core.overflow_pending = false;
          bool first = true;
          for (Consumer* consumer : core.consumers) {
            consumer->overflow_requests = 0;
            core.reservations.cancel(static_cast<core::ConsumerId>(consumer->index));
            drain_locked(core, *consumer, now, *next, first, /*scheduled=*/true);
            first = false;
          }
        }
        core.producer_cv.notify_all();
        run_handlers(core, lock);
        continue;
      }
    }

    // The slot fired: one scheduled wakeup serves every consumer
    // registered for it (the latching group).
    ++core.stats.scheduled_wakeups;
    {
      const ScopedCpuTimer timer(core.stats.manager_cpu_ns);
      const auto ids = core.reservations.take_slot(*next);
      bool first = true;
      for (const core::ConsumerId id : ids) {
        drain_locked(core, *consumers_[id], now, *next, first, /*scheduled=*/true);
        first = false;
      }
    }
    run_handlers(core, lock);
  }
}

void ThreadPbpl::drain_locked(Core& core, Consumer& consumer, SimTime now,
                              std::int64_t slot, bool paid, bool scheduled) {
  obs::note_wakeup(static_cast<std::uint16_t>(core.index),
                   static_cast<std::uint32_t>(consumer.index), slot, paid, scheduled,
                   now);
  const auto drained_at = Clock::now();
  const std::uint64_t violations_before =
      consumer.guard ? consumer.guard->violations() : 0;
  // Positional span sampling, consumer side: count drained positions and
  // reconstruct the sampled producer ids.  The drain-start stamp shares
  // `now` with the note_wakeup above, so the fold's wake join (inclusive
  // ≤ bound) attributes these spans to exactly this wakeup.
  const std::uint64_t span_every = obs::span_sample_every();
  std::vector<std::uint64_t> sampled;
  // Bulk drain: chunked pop_bulk instead of one virtual try_pop per item
  // (and, on the lock-free backends, one head publication per chunk).
  const std::size_t batch = consumer.buffer->drain([&](Clock::time_point stamp) {
    const auto latency = drained_at - stamp;
    core.stats.latency_s.add(std::chrono::duration<double>(latency).count());
    if (consumer.guard) {
      consumer.guard->observe(
          std::chrono::duration_cast<std::chrono::nanoseconds>(latency).count());
    }
    if (span_every != 0) {
      const std::uint64_t seq = consumer.span_drain_seq++;
      if (seq % span_every == 0) {
        sampled.push_back(span_item_id(consumer.index, seq));
      }
    }
  });
  for (const std::uint64_t id : sampled) {
    obs::note_item_stage(static_cast<std::uint32_t>(consumer.index),
                         static_cast<std::uint16_t>(core.index), id,
                         obs::ItemStage::kDrainStart, now);
  }
  if (consumer.guard) {
    consumer.guard->end_batch();
    core.stats.latency_violations += consumer.guard->violations() - violations_before;
  }
  core.stats.items += batch;
  core.stats.batch_sizes.add(static_cast<double>(batch));
  ++core.stats.invocations;
  if (batch > 0) consumer.last_batch = batch;

  if (now > consumer.last_invocation) {
    consumer.predictor->observe(static_cast<double>(batch) /
                                to_seconds(now - consumer.last_invocation));
    consumer.last_invocation = now;
  }

  make_reservation_locked(core, consumer, now);
  core.pending.push_back({&consumer, batch, slot, now, drained_at, std::move(sampled)});
}

void ThreadPbpl::run_handlers(Core& core, std::unique_lock<std::mutex>& lock) {
  if (core.pending.empty()) return;
  // Handler CPU is still manager-thread CPU; the timer's destructor
  // writes the shard after the lock is re-held.
  const ScopedCpuTimer timer(core.stats.manager_cpu_ns);
  lock.unlock();
  for (const PendingBatch& p : core.pending) {
    if (handler_) handler_(p.consumer->index, p.batch);
    if (injector_ != nullptr && p.batch > 0) {
      // Slow-consumer fault: the handler runs long on the manager thread
      // — stalling this core's schedule (and tripping its watchdog), but
      // no lock is held, so producers and other cores keep going.
      if (const SimDuration delay = injector_->handler_delay(); delay > 0) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(delay));
      }
    }
    obs::note_slot_batch(
        static_cast<std::uint16_t>(core.index),
        static_cast<std::uint32_t>(p.consumer->index), p.slot, p.batch, p.now,
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - p.drained_at)
            .count());
    if (!p.sampled.empty()) {
      const SimTime done = now_ns();
      for (const std::uint64_t id : p.sampled) {
        obs::note_item_stage(static_cast<std::uint32_t>(p.consumer->index),
                             static_cast<std::uint16_t>(core.index), id,
                             obs::ItemStage::kHandlerDone, done);
      }
    }
  }
  lock.lock();
  core.pending.clear();
}

void ThreadPbpl::make_reservation_locked(Core& core, Consumer& consumer, SimTime now) {
  const double rate = consumer.predictor->predict();
  std::size_t capacity = consumer.buffer->capacity();
  if (config_.dynamic_resize) capacity += pool_.free_slots();
  capacity = std::max<std::size_t>(capacity, 1);

  core::SlotQuery query{now, rate, capacity, config_.max_latency,
                        config_.fill_tolerance};
  if (consumer.guard) {
    // Live latency feedback (mirrors the simulation host): a violated
    // batch shrinks both the fill horizon and the zero-rate poll horizon
    // so overload tightens reservations instead of breaking the bound.
    const double scale = consumer.guard->horizon_scale();
    query.fill_tolerance *= scale;
    query.max_latency = std::max<SimDuration>(
        config_.resolved_slot_size(),
        static_cast<SimDuration>(static_cast<double>(config_.max_latency) * scale));
  }
  core::SlotChoice choice =
      config_.latching ? core::choose_slot(track_, core.reservations, query, config_.costs)
                       : core::fill_slot(track_, query, config_.costs);

  if (config_.dynamic_resize && choice.expected_items > 0.0) {
    const auto target = static_cast<std::size_t>(
        std::ceil(choice.expected_items * config_.resize_headroom));
    const std::size_t granted =
        consumer.buffer->resize(std::max<std::size_t>(target, consumer.last_batch));
    if (static_cast<double>(granted) < choice.expected_items) {
      query.buffer_capacity = granted;
      choice = config_.latching
                   ? core::choose_slot(track_, core.reservations, query, config_.costs)
                   : core::fill_slot(track_, query, config_.costs);
    }
  }

  core.reservations.reserve(static_cast<core::ConsumerId>(consumer.index), choice.slot);
  ++core.stats.reservations;
  if (choice.latched) ++core.stats.latched_reservations;
  // A new earliest reservation must re-target the manager's wait.
  core.cv.notify_all();
}

}  // namespace pcpc::runtime
