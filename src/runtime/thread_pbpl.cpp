#include "pcpc/runtime/thread_pbpl.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "pcpc/common/assert.hpp"
#include "pcpc/runtime/cpu_meter.hpp"

namespace pcpc::runtime {

namespace {
constexpr core::SlotIndex kMinSlot = std::numeric_limits<core::SlotIndex>::min();
}

ThreadPbpl::ThreadPbpl(std::size_t consumers, const core::PbplConfig& config,
                       BatchHandler handler)
    : config_(config),
      track_(config.resolved_slot_size()),
      epoch_(Clock::now()),
      handler_(std::move(handler)),
      pool_(std::max<std::size_t>(consumers, 1), config.base_buffer, config.pool_segment) {
  PCPC_ASSERT_MSG(consumers > 0, "need at least one consumer");
  PCPC_ASSERT_MSG(config.cores > 0, "need at least one core");

  for (std::size_t c = 0; c < config.cores; ++c) {
    cores_.push_back(std::make_unique<Core>());
    cores_.back()->index = c;
  }
  for (std::size_t i = 0; i < consumers; ++i) {
    auto consumer = std::make_unique<Consumer>();
    consumer->index = i;
    consumer->core = cores_[i % cores_.size()].get();
    consumer->buffer = std::make_unique<queue::ElasticBuffer<Clock::time_point>>(
        pool_.make_buffer());
    consumer->predictor = core::make_predictor(config.predictor, config.predictor_window);
    consumer->core->consumers.push_back(consumer.get());
    consumers_.push_back(std::move(consumer));
  }

  {
    std::unique_lock lock(mutex_);
    const SimTime now = now_ns();
    for (auto& consumer : consumers_) {
      consumer->last_invocation = now;
      make_reservation_locked(*consumer->core, *consumer, now);
    }
  }
  for (auto& core : cores_) {
    core->thread = std::thread([this, core = core.get()] { manager_loop(*core); });
  }
}

ThreadPbpl::~ThreadPbpl() { stop(); }

void ThreadPbpl::stop() {
  {
    std::unique_lock lock(mutex_);
    if (!running_) return;
    running_ = false;
    for (auto& core : cores_) core->cv.notify_all();
    producer_cv_.notify_all();
  }
  for (auto& core : cores_) {
    if (core->thread.joinable()) core->thread.join();
  }
  // Final drain: account leftovers without extra wakeups.
  std::unique_lock lock(mutex_);
  for (auto& consumer : consumers_) {
    std::size_t batch = 0;
    const auto drained_at = Clock::now();
    while (auto item = consumer->buffer->pop()) {
      stats_.latency_s.add(std::chrono::duration<double>(drained_at - *item).count());
      ++batch;
    }
    if (batch > 0) {
      stats_.items += batch;
      stats_.batch_sizes.add(static_cast<double>(batch));
      ++stats_.invocations;
      if (handler_) handler_(consumer->index, batch);
    }
  }
  for (auto& core : cores_) {
    stats_.scheduled_wakeups += core->scheduled_wakeups;
    stats_.manager_cpu_ns += core->cpu_ns;
    core->scheduled_wakeups = 0;
    core->cpu_ns = 0;
  }
}

void ThreadPbpl::produce(std::size_t consumer_index) {
  std::unique_lock lock(mutex_);
  PCPC_ASSERT(consumer_index < consumers_.size());
  Consumer& consumer = *consumers_[consumer_index];
  const auto stamp = Clock::now();
  if (consumer.buffer->push(stamp)) return;

  if (config_.emergency_borrow) {
    const std::size_t extra = std::max<std::size_t>(1, consumer.buffer->capacity() / 4);
    consumer.buffer->resize(consumer.buffer->capacity() + extra);
    if (consumer.buffer->push(stamp)) {
      ++stats_.emergency_borrows;
      return;
    }
  }

  // Forced drain: hand the wakeup to the manager thread and wait for
  // space (this is the unscheduled overflow wakeup).
  while (running_ && !consumer.buffer->push(stamp)) {
    ++consumer.overflow_requests;
    consumer.core->overflow_pending = true;
    consumer.core->cv.notify_all();
    producer_cv_.wait(lock);
  }
}

ThreadPbplStats ThreadPbpl::stats() const {
  std::unique_lock lock(mutex_);
  return stats_;
}

SimTime ThreadPbpl::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - epoch_)
      .count();
}

Clock::time_point ThreadPbpl::slot_deadline(core::SlotIndex slot) const {
  return epoch_ + std::chrono::nanoseconds(track_.start_of(slot));
}

void ThreadPbpl::manager_loop(Core& core) {
  std::unique_lock lock(mutex_);
  while (running_) {
    // Forced (overflow) drains take priority over the slot schedule.
    if (core.overflow_pending) {
      core.overflow_pending = false;
      const ScopedCpuTimer timer(core.cpu_ns);
      for (Consumer* consumer : core.consumers) {
        if (consumer->overflow_requests == 0) continue;
        consumer->overflow_requests = 0;
        ++stats_.overflow_wakeups;
        core.reservations.cancel(static_cast<core::ConsumerId>(consumer->index));
        invoke_locked(core, *consumer, now_ns());
      }
      producer_cv_.notify_all();
      continue;
    }

    const auto next = core.reservations.next_reserved(kMinSlot);
    if (!next.has_value()) {
      core.cv.wait(lock);
      continue;
    }
    const auto deadline = slot_deadline(*next);
    if (core.cv.wait_until(lock, deadline) != std::cv_status::timeout) {
      continue;  // stop, overflow, or a spurious wake: re-evaluate
    }

    // The slot fired: one scheduled wakeup serves every consumer
    // registered for it (the latching group).
    ++core.scheduled_wakeups;
    const ScopedCpuTimer timer(core.cpu_ns);
    const SimTime now = now_ns();
    const auto ids = core.reservations.take_slot(*next);
    for (const core::ConsumerId id : ids) {
      invoke_locked(core, *consumers_[id], now);
    }
  }
}

void ThreadPbpl::invoke_locked(Core& core, Consumer& consumer, SimTime now) {
  std::size_t batch = 0;
  const auto drained_at = Clock::now();
  while (auto item = consumer.buffer->pop()) {
    stats_.latency_s.add(std::chrono::duration<double>(drained_at - *item).count());
    ++batch;
  }
  stats_.items += batch;
  stats_.batch_sizes.add(static_cast<double>(batch));
  ++stats_.invocations;
  if (batch > 0) consumer.last_batch = batch;

  if (now > consumer.last_invocation) {
    consumer.predictor->observe(static_cast<double>(batch) /
                                to_seconds(now - consumer.last_invocation));
    consumer.last_invocation = now;
  }

  if (handler_) handler_(consumer.index, batch);

  make_reservation_locked(core, consumer, now);
}

void ThreadPbpl::make_reservation_locked(Core& core, Consumer& consumer, SimTime now) {
  const double rate = consumer.predictor->predict();
  std::size_t capacity = consumer.buffer->capacity();
  if (config_.dynamic_resize) capacity += pool_.free_slots();
  capacity = std::max<std::size_t>(capacity, 1);

  core::SlotQuery query{now, rate, capacity, config_.max_latency,
                        config_.fill_tolerance};
  core::SlotChoice choice =
      config_.latching ? core::choose_slot(track_, core.reservations, query, config_.costs)
                       : core::fill_slot(track_, query, config_.costs);

  if (config_.dynamic_resize && choice.expected_items > 0.0) {
    const auto target = static_cast<std::size_t>(
        std::ceil(choice.expected_items * config_.resize_headroom));
    const std::size_t granted =
        consumer.buffer->resize(std::max<std::size_t>(target, consumer.last_batch));
    if (static_cast<double>(granted) < choice.expected_items) {
      query.buffer_capacity = granted;
      choice = config_.latching
                   ? core::choose_slot(track_, core.reservations, query, config_.costs)
                   : core::fill_slot(track_, query, config_.costs);
    }
  }

  core.reservations.reserve(static_cast<core::ConsumerId>(consumer.index), choice.slot);
  ++stats_.reservations;
  if (choice.latched) ++stats_.latched_reservations;
  // A new earliest reservation must re-target the manager's wait.
  core.cv.notify_all();
}

}  // namespace pcpc::runtime
