#include "pcpc/runtime/trace_replayer.hpp"

#include <atomic>

#include "pcpc/common/assert.hpp"

namespace pcpc::runtime {

TraceReplayer::TraceReplayer(std::vector<trace::Trace> traces, SimDuration horizon,
                             Deliver deliver)
    : traces_(std::move(traces)) {
  PCPC_ASSERT_MSG(deliver != nullptr, "deliver callback must be set");
  const auto epoch = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < traces_.size(); ++i) {
    threads_.emplace_back([this, i, epoch, horizon, deliver] {
      for (const SimTime t : traces_[i].timestamps()) {
        if (t >= horizon) break;
        std::this_thread::sleep_until(epoch + std::chrono::nanoseconds(t));
        if (!running_.load(std::memory_order_relaxed)) return;
        deliver(i);
      }
    });
  }
}

TraceReplayer::~TraceReplayer() { stop(); }

void TraceReplayer::wait() {
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

void TraceReplayer::stop() {
  running_.store(false);
  wait();
}

}  // namespace pcpc::runtime
