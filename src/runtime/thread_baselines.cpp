#include "pcpc/runtime/thread_baselines.hpp"

#include "pcpc/common/assert.hpp"
#include "pcpc/obs/obs.hpp"
#include "pcpc/runtime/cpu_meter.hpp"

namespace pcpc::runtime {

namespace {

/// Session-clock timestamp for telemetry (0 when no session is armed).
/// Baselines have no epoch of their own, so events land on whatever
/// timeline the harness installed.
std::int64_t obs_now() {
  obs::Session* session = obs::Session::current();
  return session != nullptr ? session->now_ns() : 0;
}

/// Every baseline wakeup is paid: one thread per pair, no latching to
/// share the wake with (this is exactly the cost PBPL amortises away).
void note_baseline_wakeup(const std::size_t pair, const bool scheduled) {
  if (!obs::enabled()) return;
  obs::note_wakeup(static_cast<std::uint16_t>(pair), static_cast<std::uint32_t>(pair),
                   obs::kNoSlot, /*paid=*/true, scheduled, obs_now());
}

}  // namespace

ThreadBaseline::ThreadBaseline(std::size_t pairs, std::size_t buffer_capacity,
                               SignalPolicy policy, SimDuration period,
                               fault::FaultInjector* injector,
                               queue::BackendKind backend)
    : capacity_(buffer_capacity), policy_(policy), period_(period), injector_(injector) {
  PCPC_ASSERT_MSG(period > 0, "period must be positive");
  PCPC_ASSERT_MSG(pairs > 0, "need at least one pair");
  PCPC_ASSERT_MSG(buffer_capacity > 0, "buffer capacity must be positive");
  for (std::size_t i = 0; i < pairs; ++i) {
    pairs_.push_back(std::make_unique<Pair>());
    pairs_.back()->index = i;
    pairs_.back()->buffer = queue::make_handoff<BaselineClock::time_point>(
        backend, buffer_capacity, static_cast<std::uint32_t>(i));
  }
  for (auto& pair : pairs_) {
    pair->thread = std::thread([this, pair = pair.get()] { consumer_loop(*pair); });
  }
}

ThreadBaseline::~ThreadBaseline() { stop(); }

void ThreadBaseline::produce(std::size_t pair_index) {
  PCPC_ASSERT(pair_index < pairs_.size());
  Pair& pair = *pairs_[pair_index];
  std::size_t items = 1;
  if (injector_ != nullptr) {
    // Same producer faults the PBPL host sees: stall on the producer's
    // own thread, then deliver the whole burst back-to-back.
    if (const SimDuration stall = injector_->producer_stall(); stall > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(stall));
    }
    items += injector_->burst_items();
  }
  queue::Handoff<BaselineClock::time_point>& buf = *pair.buffer;
  if (buf.lock_free()) {
    // Lock-free fast path: a successful push never takes the pair lock.
    // Signaling still rendezvouses through it — an empty lock/unlock
    // before notify fences the signal against the consumer's
    // check-then-wait window so it cannot be lost.
    for (std::size_t i = 0; i < items; ++i) {
      while (!buf.try_push(BaselineClock::now())) {
        // Full: classic bounded-buffer backpressure.
        std::unique_lock lock(pair.mutex);
        pair.consumer_cv.notify_one();
        pair.producer_cv.wait(lock, [&] { return !buf.full() || !running_; });
        if (!running_) return;
      }
      // Periodic consumers wake on their own timer; a full buffer still
      // forces an immediate drain (the overflow wakeup).
      if (policy_ == SignalPolicy::PerItem || buf.full()) {
        { std::lock_guard<std::mutex> fence(pair.mutex); }
        pair.consumer_cv.notify_one();
      }
    }
    return;
  }
  std::unique_lock lock(pair.mutex);
  for (std::size_t i = 0; i < items; ++i) {
    pair.producer_cv.wait(lock, [&] { return !buf.full() || !running_; });
    if (!running_) return;
    const bool stored = buf.try_push(BaselineClock::now());
    PCPC_ASSERT_MSG(stored, "bounded push failed below capacity");
    // Periodic consumers wake on their own timer; a full buffer still
    // forces an immediate drain (the overflow wakeup).
    if (policy_ == SignalPolicy::PerItem ||
        (policy_ == SignalPolicy::OnFull && buf.full()) ||
        (policy_ == SignalPolicy::Periodic && buf.full())) {
      pair.consumer_cv.notify_one();
    }
  }
}

void ThreadBaseline::stop() {
  if (!running_.exchange(false)) return;
  for (auto& pair : pairs_) {
    std::unique_lock lock(pair->mutex);
    pair->consumer_cv.notify_all();
    pair->producer_cv.notify_all();
  }
  for (auto& pair : pairs_) {
    if (pair->thread.joinable()) pair->thread.join();
  }
  // Drain leftovers into each pair's own shard.  Only the pair lock is
  // involved — per-pair stats sharding dissolved the old global stats
  // mutex (and with it the lock-order-inversion cycle TSan once found
  // between drain_locked and this loop).
  for (auto& pair : pairs_) {
    std::unique_lock lock(pair->mutex);
    if (!pair->buffer->empty()) {
      const auto now = BaselineClock::now();
      const std::size_t batch =
          pair->buffer->drain([&](BaselineClock::time_point stamp) {
            pair->stats.latency_s.add(std::chrono::duration<double>(now - stamp).count());
          });
      if (batch > 0) {
        pair->stats.items += batch;
        pair->stats.batch_sizes.add(static_cast<double>(batch));
        ++pair->stats.invocations;
      }
    }
  }
}

ThreadBaselineStats ThreadBaseline::stats() const {
  ThreadBaselineStats out;
  for (const auto& pair : pairs_) {
    std::unique_lock lock(pair->mutex);
    out.merge(pair->stats);
  }
  return out;
}

void ThreadBaseline::consumer_loop(Pair& pair) {
  std::unique_lock lock(pair.mutex);
  auto next_deadline =
      BaselineClock::now() + std::chrono::nanoseconds(period_);
  while (running_) {
    if (policy_ == SignalPolicy::Periodic) {
      // Absolute-deadline timer loop: drain at every k·T, or earlier on a
      // buffer-full signal.
      if (!pair.buffer->full()) {
        if (pair.consumer_cv.wait_until(lock, next_deadline) !=
            std::cv_status::timeout) {
          if (!running_) break;
          ++pair.stats.consumer_wakeups;  // overflow (or shutdown) signal
          note_baseline_wakeup(pair.index, /*scheduled=*/false);
          if (!pair.buffer->full()) continue;
        } else {
          ++pair.stats.consumer_wakeups;  // timer fire
          note_baseline_wakeup(pair.index, /*scheduled=*/true);
          next_deadline += std::chrono::nanoseconds(period_);
        }
      }
      drain_locked(pair, lock);
      continue;
    }
    const bool ready = policy_ == SignalPolicy::PerItem ? !pair.buffer->empty()
                                                        : pair.buffer->full();
    if (!ready) {
      pair.consumer_cv.wait(lock);
      if (!running_) break;
      ++pair.stats.consumer_wakeups;  // the thread actually blocked and was woken
      note_baseline_wakeup(pair.index, /*scheduled=*/false);
      continue;        // re-check the drain condition
    }
    drain_locked(pair, lock);
  }
}

void ThreadBaseline::drain_locked(Pair& pair, std::unique_lock<std::mutex>& lock) {
  const ScopedCpuTimer timer(pair.stats.consumer_cpu_ns);
  if (injector_ != nullptr && !pair.buffer->empty()) {
    // Slow-consumer fault: the handler overruns while holding the pair's
    // lock, so producers feel the stall as backpressure.  (Deliberately
    // unlike the PBPL host, whose handlers run outside the lock — the
    // baselines model the classic coupled design.)
    if (const SimDuration delay = injector_->handler_delay(); delay > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(delay));
    }
  }
  const auto now = BaselineClock::now();
  // Bulk drain into the pair's own shard: chunked pop_bulk instead of a
  // virtual try_pop plus a global stats lock per item.
  const std::size_t batch = pair.buffer->drain([&](BaselineClock::time_point stamp) {
    pair.stats.latency_s.add(std::chrono::duration<double>(now - stamp).count());
  });
  pair.producer_cv.notify_all();
  if (obs::enabled()) {
    obs::note_slot_batch(
        static_cast<std::uint16_t>(pair.index), static_cast<std::uint32_t>(pair.index),
        obs::kNoSlot, batch, obs_now(),
        std::chrono::duration_cast<std::chrono::nanoseconds>(BaselineClock::now() - now)
            .count());
  }
  pair.stats.items += batch;
  pair.stats.batch_sizes.add(static_cast<double>(batch));
  ++pair.stats.invocations;
  (void)lock;
}

}  // namespace pcpc::runtime
