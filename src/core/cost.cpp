#include "pcpc/core/cost.hpp"

#include <algorithm>
#include <cmath>

#include "pcpc/common/assert.hpp"

namespace pcpc::core {

double rho(double expected_items, bool slot_already_reserved, const EnergyCosts& costs) {
  PCPC_ASSERT_MSG(expected_items > 0.0, "rho is defined for positive batch sizes");
  const double w = slot_already_reserved ? 0.0 : costs.wakeup_j;
  return (w + costs.batch_energy_j(expected_items)) / expected_items;
}

SlotChoice choose_slot(const SlotTrack& track, const ReservationTable& reservations,
                       const SlotQuery& query, const EnergyCosts& costs) {
  PCPC_ASSERT_MSG(query.buffer_capacity > 0, "buffer capacity must be positive");
  PCPC_ASSERT_MSG(query.max_latency > 0, "latency bound must be positive");
  const SlotIndex first = track.next_after(query.now);

  // Degenerate prediction: no items expected.  ρ is undefined (its
  // denominator is zero for every slot), so the consumer free-rides on
  // the latest already-reserved slot inside its latency horizon, or polls
  // at the horizon when none exists — it must wake eventually because a
  // zero prediction is only a prediction.
  if (query.predicted_rate_hz <= 0.0) {
    SlotIndex cap = track.index_of(query.now + query.max_latency);
    cap = std::max(cap, first);
    const auto latch = reservations.prev_reserved(cap, first);
    SlotChoice choice;
    choice.slot = latch.value_or(cap);
    choice.latched = latch.has_value();
    choice.cost = 0.0;
    choice.expected_items = 0.0;
    return choice;
  }

  const double rate = query.predicted_rate_hz;
  // Buffer-fill horizon B/r̂ (stretched by the fill tolerance), capped so
  // the first predicted item (arriving ≈ now + 1/r̂) still meets its
  // response-latency bound L.
  const double fill_seconds =
      query.fill_tolerance * static_cast<double>(query.buffer_capacity) / rate;
  const double latency_cap_seconds = 1.0 / rate + to_seconds(query.max_latency);
  const double horizon_seconds = std::min(fill_seconds, latency_cap_seconds);
  SlotIndex start = track.index_of(query.now + from_seconds(horizon_seconds));
  start = std::max(start, first);

  const auto expected = [&](SlotIndex j) {
    return rate * to_seconds(track.start_of(j) - query.now);
  };

  SlotChoice best;
  best.slot = start;
  best.latched = reservations.slot_reserved(start);
  best.expected_items = expected(start);
  best.cost = rho(best.expected_items, best.latched, costs);

  // Backtrack.  Between reserved slots, ρ of an unreserved slot is
  // ω/n + e-slope, strictly decreasing in n — so later unreserved slots
  // always beat earlier ones and only *reserved* slots are worth probing
  // (the paper's constant-time backtracking argument).  Stop at the first
  // probe that does not improve: further-back slots have smaller batches
  // and the same zero wakeup cost, hence strictly higher ρ.
  SlotIndex probe_from = best.slot - 1;
  while (probe_from >= first) {
    const auto candidate = reservations.prev_reserved(probe_from, first);
    if (!candidate.has_value()) break;
    const double n = expected(*candidate);
    const double cost = rho(n, /*slot_already_reserved=*/true, costs);
    if (cost < best.cost) {
      best.slot = *candidate;
      best.latched = true;
      best.expected_items = n;
      best.cost = cost;
      probe_from = *candidate - 1;
    } else {
      break;
    }
  }
  return best;
}

SlotChoice fill_slot(const SlotTrack& track, const SlotQuery& query,
                     const EnergyCosts& costs) {
  PCPC_ASSERT_MSG(query.buffer_capacity > 0, "buffer capacity must be positive");
  PCPC_ASSERT_MSG(query.max_latency > 0, "latency bound must be positive");
  const SlotIndex first = track.next_after(query.now);
  SlotChoice choice;
  if (query.predicted_rate_hz <= 0.0) {
    choice.slot = std::max(track.index_of(query.now + query.max_latency), first);
    return choice;
  }
  const double rate = query.predicted_rate_hz;
  const double fill_seconds =
      query.fill_tolerance * static_cast<double>(query.buffer_capacity) / rate;
  const double latency_cap_seconds = 1.0 / rate + to_seconds(query.max_latency);
  const double horizon_seconds = std::min(fill_seconds, latency_cap_seconds);
  choice.slot =
      std::max(track.index_of(query.now + from_seconds(horizon_seconds)), first);
  choice.expected_items = rate * to_seconds(track.start_of(choice.slot) - query.now);
  choice.cost = rho(choice.expected_items, false, costs);
  return choice;
}

}  // namespace pcpc::core
