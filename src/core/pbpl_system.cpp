#include "pcpc/core/pbpl_system.hpp"

#include <algorithm>

#include "pcpc/common/assert.hpp"
#include "pcpc/sim/replay.hpp"

namespace pcpc::core {

PbplSystem::PbplSystem(sim::Simulator& simulator, std::size_t consumers,
                       const PbplConfig& config, std::span<const double> utilization)
    : simulator_(simulator),
      config_(config),
      pool_(std::max<std::size_t>(consumers, 1), config.base_buffer, config.pool_segment) {
  PCPC_ASSERT_MSG(consumers > 0, "PBPL system needs at least one consumer");
  PCPC_ASSERT_MSG(config.cores > 0, "PBPL system needs at least one core");

  const SlotTrack track(config_.resolved_slot_size());
  for (std::size_t c = 0; c < config_.cores; ++c) {
    cores_.push_back(std::make_unique<SimCore>(simulator_, simulator_.now()));
    managers_.push_back(std::make_unique<CoreManager>(simulator_, *cores_.back(), track,
                                                      config_.manager_overhead,
                                                      static_cast<std::uint16_t>(c)));
  }
  mapping_ = assign_consumers(consumers, config_.cores, config_.assignment, utilization,
                              config_.utilization_cap);
  for (std::size_t i = 0; i < consumers; ++i) {
    auto& manager = *managers_[mapping_[i]];
    consumers_.push_back(std::make_unique<PbplConsumer>(static_cast<ConsumerId>(i),
                                                        manager, pool_, config_));
  }
}

void PbplSystem::migrate_consumer(std::size_t pair, std::size_t core) {
  PCPC_ASSERT_MSG(pair < consumers_.size(), "migrating unknown pair");
  PCPC_ASSERT_MSG(core < managers_.size(), "migrating to unknown core");
  if (mapping_[pair] == core) return;
  consumers_[pair]->rebind(*managers_[core], simulator_.now());
  mapping_[pair] = core;
}

void PbplSystem::start() {
  for (auto& consumer : consumers_) consumer->start(simulator_.now());
}

PbplResult PbplSystem::finish(SimTime end) {
  PCPC_ASSERT_MSG(simulator_.now() <= end, "finish() before the simulator reached end");

  // Final sweep: one wakeup per core with leftovers, then cancel the slot
  // machinery so only core-sleep events remain.
  for (auto& manager : managers_) manager->drain_all(end);
  simulator_.run();

  const SimTime final_time = std::max(end, simulator_.now());
  PbplResult result;
  for (auto& core : cores_) {
    core->finalize(final_time);
    result.paid_wakeups += core->wakeups();
    result.timelines.push_back(core->take_timeline());
  }
  for (auto& manager : managers_) {
    result.scheduled_wakeups += manager->scheduled_wakeups();
  }
  for (auto& consumer : consumers_) {
    const auto& s = consumer->stats();
    result.items += s.items;
    result.invocations += s.invocations;
    result.overflow_wakeups += s.overflow_wakeups;
    result.emergency_borrows += s.emergency_borrows;
    result.latency_violations += s.latency_violations;
    result.reservations += s.reservations;
    result.latched_reservations += s.latched_reservations;
    result.batch_sizes.merge(s.batch_sizes);
    result.latency_s.merge(s.latency_s);
    result.buffer_capacity.merge(consumer->buffer().capacity_samples());
  }
  return result;
}

PbplResult run_pbpl(std::span<const trace::Trace> traces, SimDuration horizon,
                    const PbplConfig& config) {
  PCPC_ASSERT_MSG(!traces.empty(), "need at least one producer trace");
  PCPC_ASSERT_MSG(horizon > 0, "horizon must be positive");

  // Expected per-consumer core utilization for load-aware assignment.
  std::vector<double> utilization;
  if (config.assignment != AssignmentPolicy::RoundRobin) {
    utilization.reserve(traces.size());
    for (const auto& t : traces) {
      const double rate = static_cast<double>(t.size()) / to_seconds(horizon);
      utilization.push_back(rate * to_seconds(config.service.per_item));
    }
  }

  sim::Simulator simulator;
  PbplSystem system(simulator, traces.size(), config, utilization);
  system.start();
  for (std::size_t i = 0; i < traces.size(); ++i) {
    PbplConsumer& consumer = system.consumer(i);
    sim::replay(simulator, traces[i].timestamps(), horizon,
                [&consumer](SimTime t) { consumer.produce(t); });
  }
  simulator.run_until(horizon);
  return system.finish(horizon);
}

}  // namespace pcpc::core
