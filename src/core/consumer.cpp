#include "pcpc/core/consumer.hpp"

#include <algorithm>
#include <cmath>

#include "pcpc/common/assert.hpp"
#include "pcpc/obs/obs.hpp"

namespace pcpc::core {

PbplConsumer::PbplConsumer(ConsumerId id, CoreManager& manager,
                           queue::BufferPool<SimTime>& pool, const PbplConfig& config)
    : id_(id),
      manager_(&manager),
      pool_(pool),
      config_(config),
      buffer_(queue::make_pool_handoff<SimTime>(config.queue_backend, pool,
                                                static_cast<std::uint32_t>(id))),
      predictor_(make_predictor(config.predictor, config.predictor_window)) {
  if (config.latency_guard) guard_.emplace(config.max_latency);
  manager_->register_consumer(id_, this);
}

void PbplConsumer::start(SimTime now) {
  last_invocation_ = now;
  make_reservation(now);
}

void PbplConsumer::produce(SimTime now) {
  // Sampled lifecycle span: in virtual time admission is instantaneous,
  // so a sampled item stamps produce and enqueue at the same tick.
  if (const std::uint64_t every = obs::span_sample_every(); every != 0) {
    const std::uint64_t seq = span_produce_seq_++;
    if (seq == span_next_produce_) {
      span_next_produce_ += every;
      const std::uint64_t item =
          (static_cast<std::uint64_t>(id_) << 32) | (seq & 0xffffffffu);
      obs::note_item_stage(static_cast<std::uint32_t>(id_), manager_->core_id(), item,
                           obs::ItemStage::kProduce, now);
      obs::note_item_stage(static_cast<std::uint32_t>(id_), manager_->core_id(), item,
                           obs::ItemStage::kEnqueue, now);
    }
  }
  if (buffer_->try_push(now)) return;

  if (config_.emergency_borrow) {
    // Lean on the elastic wall: borrowing a quarter of our capacity from
    // the pool keeps us latched instead of forcing a fresh wakeup.
    const std::size_t extra = std::max<std::size_t>(1, buffer_->capacity() / 4);
    buffer_->resize(buffer_->capacity() + extra);
    if (buffer_->try_push(now)) {
      ++stats_.emergency_borrows;
      obs::note_overflow(manager_->core_id(), static_cast<std::uint32_t>(id_),
                         obs::OverflowAction::kEmergencyBorrow, now);
      return;
    }
  }

  // Unscheduled wakeup: the buffer genuinely cannot hold the item, so the
  // batch is processed immediately (Section V-A calls this the case where
  // "a buffer overflow can occur at any time").
  ++stats_.overflow_wakeups;
  obs::note_overflow(manager_->core_id(), static_cast<std::uint32_t>(id_),
                     obs::OverflowAction::kForcedDrain, now);
  manager_->unscheduled_invoke(id_, now);
  const bool stored = buffer_->try_push(now);
  PCPC_ASSERT_MSG(stored, "buffer still full after an overflow drain");
}

SimDuration PbplConsumer::on_invoked(SimTime now, bool scheduled) {
  (void)scheduled;
  // 1. Consume: drain the whole buffer as one batch (chunked bulk pops —
  //    same item order and stats as the old per-item try_pop loop).
  const std::uint64_t span_every = obs::span_sample_every();
  std::vector<std::uint64_t> sampled;
  const std::size_t batch = buffer_->drain([&](SimTime item) {
    const SimDuration latency = now - item;
    stats_.latency_s.add(to_seconds(latency));
    if (guard_) guard_->observe(latency);
    if (span_every != 0) {
      const std::uint64_t seq = span_drain_seq_++;
      if (seq == span_next_drain_) {
        span_next_drain_ += span_every;
        sampled.push_back((static_cast<std::uint64_t>(id_) << 32) |
                          (seq & 0xffffffffu));
      }
    }
  });
  for (const std::uint64_t item : sampled) {
    obs::note_item_stage(static_cast<std::uint32_t>(id_), manager_->core_id(), item,
                         obs::ItemStage::kDrainStart, now);
  }
  if (guard_) {
    guard_->end_batch();
    stats_.latency_violations = guard_->violations();
  }
  stats_.items += batch;
  stats_.batch_sizes.add(static_cast<double>(batch));
  ++stats_.invocations;
  if (batch > 0) last_batch_ = batch;

  // 2. Update prediction with the observed rate
  //    r_j = |γ(τ_{j-1}, τ_j)| / (τ_j − τ_{j-1}).
  if (now > last_invocation_) {
    predictor_->observe(static_cast<double>(batch) / to_seconds(now - last_invocation_));
    last_invocation_ = now;
  }

  // 3. Reserve the next slot (and resize the buffer for it).
  make_reservation(now);

  SimDuration service = config_.service.batch_time(batch);
  if (injector_ != nullptr && batch > 0) service += injector_->handler_delay();
  obs::note_slot_batch(manager_->core_id(), static_cast<std::uint32_t>(id_),
                       manager_->track().index_of(now), batch, now, service);
  // In virtual time the handler completes when the service model says so.
  for (const std::uint64_t item : sampled) {
    obs::note_item_stage(static_cast<std::uint32_t>(id_), manager_->core_id(), item,
                         obs::ItemStage::kHandlerDone, now + service);
  }
  return service;
}

void PbplConsumer::rebind(CoreManager& next, SimTime now) {
  if (&next == manager_) return;
  manager_->unregister_consumer(id_);
  manager_ = &next;
  manager_->register_consumer(id_, this);
  // Re-reserve on the destination track immediately: a consumer is never
  // without a pending slot, so the latency bound survives the move.
  make_reservation(now);
}

void PbplConsumer::make_reservation(SimTime now) {
  const double rate = predictor_->predict();

  // Prospective capacity: with dynamic resizing the consumer may plan for
  // everything the pool could lend it right now (the paper's upsizing
  // bound Bg − ΣB_q applied before the slot search, so a high-rate
  // consumer can pick a slot "that can support its expected rate").
  std::size_t capacity = buffer_->capacity();
  if (config_.dynamic_resize) capacity += pool_.free_slots();
  capacity = std::max<std::size_t>(capacity, 1);

  SlotQuery query{now, rate, capacity, config_.max_latency, config_.fill_tolerance};
  if (guard_) {
    // Feedback control: a violated deadline shrinks both the fill horizon
    // and the zero-rate poll horizon until the latency profile recovers.
    query.fill_tolerance *= guard_->horizon_scale();
    query.max_latency = std::max<SimDuration>(
        config_.resolved_slot_size(),
        static_cast<SimDuration>(static_cast<double>(config_.max_latency) *
                                 guard_->horizon_scale()));
  }
  SlotChoice choice = config_.latching
                          ? choose_slot(manager_->track(), manager_->reservations(), query,
                                        config_.costs)
                          : fill_slot(manager_->track(), query, config_.costs);

  if (config_.dynamic_resize && choice.expected_items > 0.0) {
    // Downsize to (or upsize toward) the predicted batch plus headroom:
    //   B_i = headroom · r̂·(τ_next − τ_now), clamped by the pool
    //   (Section V-C).  Floored at the last real batch so a lagging
    //   moving average cannot shrink the buffer below what the producer
    //   demonstrably delivers (that feedback loop turns one burst into an
    //   overflow cascade).  A zero prediction skips resizing entirely —
    //   no information is no reason to give the space back.
    const auto target = static_cast<std::size_t>(
        std::ceil(choice.expected_items * config_.resize_headroom));
    const std::size_t granted =
        buffer_->resize(std::max<std::size_t>(target, last_batch_));
    if (static_cast<double>(granted) < choice.expected_items) {
      // The pool could not lend enough: re-choose with what we actually
      // hold, which pulls the reservation earlier.
      query.buffer_capacity = granted;
      choice = config_.latching
                   ? choose_slot(manager_->track(), manager_->reservations(), query,
                                 config_.costs)
                   : fill_slot(manager_->track(), query, config_.costs);
    }
  }

  manager_->reserve(id_, choice.slot);
  ++stats_.reservations;
  if (choice.latched) ++stats_.latched_reservations;
  obs::note_reservation(manager_->core_id(), static_cast<std::uint32_t>(id_),
                        choice.slot, choice.latched, now);
}

}  // namespace pcpc::core
