#include "pcpc/core/latency_guard.hpp"

#include <algorithm>

#include "pcpc/common/assert.hpp"

namespace pcpc::core {

LatencyGuard::LatencyGuard(SimDuration bound, double shrink, double grow,
                           double min_scale)
    : bound_(bound), shrink_(shrink), grow_(grow), min_scale_(min_scale) {
  PCPC_ASSERT_MSG(bound > 0, "latency bound must be positive");
  PCPC_ASSERT_MSG(shrink > 0.0 && shrink < 1.0, "shrink must be in (0, 1)");
  PCPC_ASSERT_MSG(grow > 1.0, "grow must exceed 1");
  PCPC_ASSERT_MSG(min_scale > 0.0 && min_scale <= 1.0, "min_scale must be in (0, 1]");
}

void LatencyGuard::observe(SimDuration latency) {
  if (latency > bound_) {
    ++violations_;
    batch_violated_ = true;
  }
}

void LatencyGuard::end_batch() {
  if (batch_violated_) {
    ++violated_batches_;
    scale_ = std::max(min_scale_, scale_ * shrink_);
  } else {
    scale_ = std::min(1.0, scale_ * grow_);
  }
  batch_violated_ = false;
}

}  // namespace pcpc::core
