#include "pcpc/core/slot_track.hpp"

#include <algorithm>

#include "pcpc/common/assert.hpp"

namespace pcpc::core {

SlotTrack::SlotTrack(SimDuration slot_size, SimTime origin)
    : slot_size_(slot_size), origin_(origin) {
  PCPC_ASSERT_MSG(slot_size > 0, "slot size must be positive");
}

SlotIndex SlotTrack::index_of(SimTime t) const {
  const SimTime rel = t - origin_;
  // Floor division for negative offsets.
  SlotIndex q = rel / slot_size_;
  if (rel % slot_size_ != 0 && rel < 0) --q;
  return q;
}

SimDuration SlotTrack::default_slot_size(std::span<const SimDuration> max_latencies) {
  PCPC_ASSERT_MSG(!max_latencies.empty(), "need at least one latency bound");
  SimDuration min_latency = max_latencies.front();
  for (SimDuration l : max_latencies) {
    PCPC_ASSERT_MSG(l > 0, "latency bounds must be positive");
    min_latency = std::min(min_latency, l);
  }
  return min_latency;
}

}  // namespace pcpc::core
