#include "pcpc/core/core_manager.hpp"

#include <limits>
#include <vector>

#include "pcpc/common/assert.hpp"
#include "pcpc/obs/obs.hpp"

namespace pcpc::core {

namespace {
constexpr SlotIndex kMinSlot = std::numeric_limits<SlotIndex>::min();
}

CoreManager::CoreManager(sim::Simulator& simulator, SimCore& core, SlotTrack track,
                         SimDuration overhead_per_wakeup, std::uint16_t core_id)
    : simulator_(simulator),
      core_(core),
      track_(track),
      overhead_(overhead_per_wakeup),
      core_id_(core_id) {
  PCPC_ASSERT(overhead_per_wakeup >= 0);
}

void CoreManager::register_consumer(ConsumerId id, Invocable* consumer) {
  PCPC_ASSERT_MSG(consumer != nullptr, "null consumer");
  const auto [it, inserted] = consumers_.emplace(id, consumer);
  (void)it;
  PCPC_ASSERT_MSG(inserted, "consumer id registered twice");
}

void CoreManager::unregister_consumer(ConsumerId id) {
  const auto it = consumers_.find(id);
  PCPC_ASSERT_MSG(it != consumers_.end(), "unregistering unknown consumer");
  reservations_.cancel(id);
  consumers_.erase(it);
  ensure_scheduled();
}

void CoreManager::reserve(ConsumerId consumer, SlotIndex slot) {
  PCPC_ASSERT_MSG(consumers_.contains(consumer), "reserve() from unknown consumer");
  PCPC_ASSERT_MSG(track_.start_of(slot) > simulator_.now(),
                  "reservations must target future slots");
  reservations_.reserve(consumer, slot);
  ensure_scheduled();
}

void CoreManager::unscheduled_invoke(ConsumerId consumer, SimTime now) {
  const auto it = consumers_.find(consumer);
  PCPC_ASSERT_MSG(it != consumers_.end(), "unscheduled_invoke for unknown consumer");
  ++unscheduled_invocations_;
  // The consumer's reservation moves when it re-reserves inside
  // on_invoked(); drop the stale one first so the pending event can be
  // re-targeted cleanly.
  reservations_.cancel(consumer);
  const SimDuration busy = overhead_ + it->second->on_invoked(now, /*scheduled=*/false);
  const bool paid = core_.run_for(busy);
  obs::note_wakeup(core_id_, static_cast<std::uint32_t>(consumer),
                   track_.index_of(now), paid, /*scheduled=*/false, now);
  ensure_scheduled();
}

void CoreManager::drain_all(SimTime now) {
  SimDuration busy = 0;
  std::vector<ConsumerId> drained;
  for (auto& [id, consumer] : consumers_) {
    if (consumer->has_pending()) {
      busy += consumer->on_invoked(now, /*scheduled=*/true);
      ++slot_invocations_;
      drained.push_back(id);
    }
  }
  if (!drained.empty()) {
    ++scheduled_wakeups_;
    const bool paid = core_.run_for(overhead_ + busy);
    // One wakeup serves the whole sweep: per the paper's w, only the
    // first invocation can pay ω; the rest latch onto the awake core.
    for (std::size_t i = 0; i < drained.size(); ++i) {
      obs::note_wakeup(core_id_, static_cast<std::uint32_t>(drained[i]),
                       track_.index_of(now), paid && i == 0, /*scheduled=*/true, now);
    }
  }
  // The experiment is over: forget reservations made during the sweep and
  // cancel the wakeup that would serve them.
  reservations_.clear();
  if (has_pending_event_) {
    simulator_.cancel(pending_event_);
    has_pending_event_ = false;
  }
}

void CoreManager::ensure_scheduled() {
  const auto next = reservations_.next_reserved(kMinSlot);
  if (!next.has_value()) {
    if (has_pending_event_) {
      simulator_.cancel(pending_event_);
      has_pending_event_ = false;
    }
    return;
  }
  if (has_pending_event_) {
    if (pending_slot_ == *next) return;
    simulator_.cancel(pending_event_);
  }
  pending_slot_ = *next;
  // Wakeups (not workload events) absorb the fault-injected clock
  // jitter: the slot fires where the perturbed timer lands.
  pending_event_ = simulator_.at_perturbed(track_.start_of(*next),
                                           [this](SimTime t) { on_slot_event(t); });
  has_pending_event_ = true;
}

void CoreManager::on_slot_event(SimTime t) {
  has_pending_event_ = false;
  const SlotIndex slot = pending_slot_;
  PCPC_ASSERT_MSG(simulator_.perturbed() || track_.start_of(slot) == t,
                  "slot event fired at the wrong time");
  const auto consumers = reservations_.take_slot(slot);
  if (!consumers.empty()) {
    ++scheduled_wakeups_;
    SimDuration busy = overhead_;
    for (const ConsumerId id : consumers) {
      const auto it = consumers_.find(id);
      PCPC_ASSERT_MSG(it != consumers_.end(), "reservation for unknown consumer");
      busy += it->second->on_invoked(t, /*scheduled=*/true);
      ++slot_invocations_;
    }
    const bool paid = core_.run_for(busy);
    // Paid/free attribution of the paper's w(τ_{i,j}): the slot's wakeup
    // is charged to the first consumer in the group iff the core was
    // idle; every other consumer latched onto it for free.
    for (std::size_t i = 0; i < consumers.size(); ++i) {
      obs::note_wakeup(core_id_, static_cast<std::uint32_t>(consumers[i]), slot,
                       paid && i == 0, /*scheduled=*/true, t);
    }
  }
  ensure_scheduled();
}

}  // namespace pcpc::core
