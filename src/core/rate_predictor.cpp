#include "pcpc/core/rate_predictor.hpp"

#include <algorithm>

#include "pcpc/common/assert.hpp"

namespace pcpc::core {

MovingAverageRatePredictor::MovingAverageRatePredictor(std::size_t window) : avg_(window) {
  PCPC_ASSERT_MSG(window > 0, "moving average window must be positive");
}

void MovingAverageRatePredictor::observe(double rate_hz) {
  PCPC_ASSERT_MSG(rate_hz >= 0.0, "rates are non-negative");
  avg_.add(rate_hz);
}

double MovingAverageRatePredictor::predict() const { return std::max(0.0, avg_.value()); }

void MovingAverageRatePredictor::reset() { avg_.reset(); }

std::string MovingAverageRatePredictor::name() const {
  return "moving-average(h=" + std::to_string(avg_.window()) + ")";
}

KalmanRatePredictor::KalmanRatePredictor(double process_noise, double measurement_noise)
    : q_(process_noise), r_(measurement_noise) {
  PCPC_ASSERT(process_noise > 0.0);
  PCPC_ASSERT(measurement_noise > 0.0);
}

void KalmanRatePredictor::observe(double rate_hz) {
  PCPC_ASSERT_MSG(rate_hz >= 0.0, "rates are non-negative");
  if (!initialized_) {
    x_ = rate_hz;
    p_ = r_;  // start with measurement-level uncertainty
    initialized_ = true;
    return;
  }
  // Predict step (random walk: state unchanged, uncertainty grows).
  p_ += q_;
  // Update step.
  const double gain = p_ / (p_ + r_);
  x_ += gain * (rate_hz - x_);
  p_ *= (1.0 - gain);
}

double KalmanRatePredictor::predict() const { return std::max(0.0, x_); }

void KalmanRatePredictor::reset() {
  x_ = 0.0;
  p_ = 0.0;
  initialized_ = false;
}

std::string KalmanRatePredictor::name() const { return "kalman"; }

EwmaRatePredictor::EwmaRatePredictor(double alpha) : alpha_(alpha) {
  PCPC_ASSERT_MSG(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
}

void EwmaRatePredictor::observe(double rate_hz) {
  PCPC_ASSERT_MSG(rate_hz >= 0.0, "rates are non-negative");
  if (!initialized_) {
    estimate_ = rate_hz;
    initialized_ = true;
    return;
  }
  estimate_ += alpha_ * (rate_hz - estimate_);
}

double EwmaRatePredictor::predict() const { return std::max(0.0, estimate_); }

void EwmaRatePredictor::reset() {
  estimate_ = 0.0;
  initialized_ = false;
}

std::string EwmaRatePredictor::name() const {
  return "ewma(alpha=" + std::to_string(alpha_) + ")";
}

std::unique_ptr<RatePredictor> make_predictor(PredictorKind kind, std::size_t window) {
  switch (kind) {
    case PredictorKind::MovingAverage:
      return std::make_unique<MovingAverageRatePredictor>(window);
    case PredictorKind::Kalman:
      return std::make_unique<KalmanRatePredictor>();
    case PredictorKind::Ewma:
      return std::make_unique<EwmaRatePredictor>();
  }
  PCPC_ASSERT_MSG(false, "unknown predictor kind");
  return nullptr;
}

}  // namespace pcpc::core
