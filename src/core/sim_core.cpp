#include "pcpc/core/sim_core.hpp"

#include <algorithm>

#include "pcpc/common/assert.hpp"

namespace pcpc::core {

SimCore::SimCore(sim::Simulator& simulator, SimTime start)
    : simulator_(simulator), timeline_(start), busy_until_(start) {}

bool SimCore::run_for(SimDuration busy) {
  PCPC_ASSERT_MSG(busy >= 0, "negative busy time");
  const SimTime now = simulator_.now();
  bool paid = false;
  if (now > busy_until_) {
    paid = timeline_.wake(now);
    busy_until_ = now + busy;
  } else if (now == busy_until_) {
    // Back-to-back work at the exact end of the busy window: whether the
    // sleep event already fired at this instant or not, the core never
    // accumulated idle time, so no ω is charged.
    timeline_.resume(now);
    busy_until_ = now + busy;
  } else {
    // Work arrived while the core is still active: it queues behind the
    // current busy window with no wakeup cost — this is the latching
    // discount the reservation cost function banks on.
    busy_until_ += busy;
  }
  schedule_sleep();
  return paid;
}

void SimCore::finalize(SimTime end) {
  PCPC_ASSERT_MSG(end >= busy_until_, "cannot finalize a busy core");
  if (timeline_.is_active()) timeline_.sleep(busy_until_);
  timeline_.finalize(end);
}

void SimCore::schedule_sleep() {
  if (sleep_scheduled_) return;  // the pending event re-checks on fire
  sleep_scheduled_ = true;
  simulator_.at(busy_until_, [this](SimTime t) { on_sleep(t); });
}

void SimCore::on_sleep(SimTime t) {
  sleep_scheduled_ = false;
  if (t >= busy_until_) {
    if (timeline_.is_active()) timeline_.sleep(t);
  } else {
    // The busy window was extended after this event was scheduled.
    schedule_sleep();
  }
}

}  // namespace pcpc::core
