#include "pcpc/core/assignment.hpp"

#include <algorithm>
#include <numeric>
#include <set>

#include "pcpc/common/assert.hpp"

namespace pcpc::core {

std::vector<std::size_t> assign_consumers(std::size_t consumers, std::size_t cores,
                                          AssignmentPolicy policy,
                                          std::span<const double> utilization,
                                          double utilization_cap) {
  PCPC_ASSERT_MSG(consumers > 0, "need at least one consumer");
  PCPC_ASSERT_MSG(cores > 0, "need at least one core");
  std::vector<std::size_t> assignment(consumers, 0);

  if (policy == AssignmentPolicy::RoundRobin || cores == 1) {
    for (std::size_t i = 0; i < consumers; ++i) assignment[i] = i % cores;
    return assignment;
  }

  PCPC_ASSERT_MSG(utilization.size() == consumers,
                  "Packed/RateBalanced need per-consumer utilization");
  PCPC_ASSERT_MSG(utilization_cap > 0.0, "utilization cap must be positive");

  // Both remaining policies place consumers in decreasing-load order.
  std::vector<std::size_t> order(consumers);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return utilization[a] > utilization[b];
  });

  std::vector<double> load(cores, 0.0);
  for (const std::size_t consumer : order) {
    std::size_t chosen = 0;
    if (policy == AssignmentPolicy::Packed) {
      // First fit: earliest core that stays under the cap; if none fits,
      // the least-loaded core takes the overflow (never refuse service).
      bool placed = false;
      for (std::size_t c = 0; c < cores; ++c) {
        if (load[c] + utilization[consumer] <= utilization_cap) {
          chosen = c;
          placed = true;
          break;
        }
      }
      if (!placed) {
        chosen = static_cast<std::size_t>(
            std::min_element(load.begin(), load.end()) - load.begin());
      }
    } else {  // RateBalanced
      chosen = static_cast<std::size_t>(
          std::min_element(load.begin(), load.end()) - load.begin());
    }
    assignment[consumer] = chosen;
    load[chosen] += utilization[consumer];
  }
  return assignment;
}

std::size_t cores_used(std::span<const std::size_t> assignment) {
  const std::set<std::size_t> used(assignment.begin(), assignment.end());
  return used.size();
}

}  // namespace pcpc::core
