#include "pcpc/core/reservation.hpp"

#include <algorithm>

#include "pcpc/common/assert.hpp"

namespace pcpc::core {

void ReservationTable::reserve(ConsumerId consumer, SlotIndex slot) {
  cancel(consumer);
  by_slot_[slot].push_back(consumer);
  by_consumer_[consumer] = slot;
}

void ReservationTable::cancel(ConsumerId consumer) {
  const auto it = by_consumer_.find(consumer);
  if (it == by_consumer_.end()) return;
  const auto slot_it = by_slot_.find(it->second);
  PCPC_ASSERT_MSG(slot_it != by_slot_.end(), "reservation index out of sync");
  auto& list = slot_it->second;
  list.erase(std::remove(list.begin(), list.end(), consumer), list.end());
  if (list.empty()) by_slot_.erase(slot_it);
  by_consumer_.erase(it);
}

std::optional<SlotIndex> ReservationTable::reservation_of(ConsumerId consumer) const {
  const auto it = by_consumer_.find(consumer);
  if (it == by_consumer_.end()) return std::nullopt;
  return it->second;
}

bool ReservationTable::slot_reserved(SlotIndex slot) const {
  return by_slot_.contains(slot);
}

std::vector<ConsumerId> ReservationTable::consumers_at(SlotIndex slot) const {
  const auto it = by_slot_.find(slot);
  if (it == by_slot_.end()) return {};
  return it->second;
}

std::vector<ConsumerId> ReservationTable::take_slot(SlotIndex slot) {
  const auto it = by_slot_.find(slot);
  if (it == by_slot_.end()) return {};
  std::vector<ConsumerId> consumers = std::move(it->second);
  by_slot_.erase(it);
  for (ConsumerId c : consumers) by_consumer_.erase(c);
  return consumers;
}

std::optional<SlotIndex> ReservationTable::next_reserved(SlotIndex from) const {
  const auto it = by_slot_.lower_bound(from);
  if (it == by_slot_.end()) return std::nullopt;
  return it->first;
}

std::optional<SlotIndex> ReservationTable::prev_reserved(SlotIndex from, SlotIndex floor) const {
  auto it = by_slot_.upper_bound(from);
  if (it == by_slot_.begin()) return std::nullopt;
  --it;
  if (it->first < floor) return std::nullopt;
  return it->first;
}

}  // namespace pcpc::core
