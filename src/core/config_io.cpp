#include "pcpc/core/config_io.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <vector>

namespace pcpc::core {

namespace {

bool parse_u64(const std::string& value, std::uint64_t& out) {
  const char* begin = value.data();
  const char* end = begin + value.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

bool parse_double(const std::string& value, double& out) {
  try {
    std::size_t used = 0;
    out = std::stod(value, &used);
    return used == value.size();
  } catch (...) {
    return false;
  }
}

bool parse_bool(const std::string& value, bool& out) {
  if (value == "1" || value == "true" || value == "on") {
    out = true;
    return true;
  }
  if (value == "0" || value == "false" || value == "off") {
    out = false;
    return true;
  }
  return false;
}

bool parse_duration_us(const std::string& value, SimDuration& out) {
  double us = 0.0;
  if (!parse_double(value, us) || us < 0.0) return false;
  out = static_cast<SimDuration>(us * 1000.0);
  return true;
}

void fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

bool apply_option(PbplConfig& config, const std::string& assignment, std::string* error) {
  const auto eq = assignment.find('=');
  if (eq == std::string::npos || eq == 0) {
    fail(error, "expected key=value, got '" + assignment + "'");
    return false;
  }
  const std::string key = assignment.substr(0, eq);
  const std::string value = assignment.substr(eq + 1);

  std::uint64_t u = 0;
  double d = 0.0;
  bool b = false;
  SimDuration duration = 0;

  if (key == "cores") {
    if (!parse_u64(value, u) || u == 0) return fail(error, "cores needs a positive integer"), false;
    config.cores = u;
  } else if (key == "slot_size_us") {
    if (!parse_duration_us(value, duration)) return fail(error, "bad slot_size_us"), false;
    config.slot_size = duration;
  } else if (key == "max_latency_us") {
    if (!parse_duration_us(value, duration) || duration <= 0)
      return fail(error, "bad max_latency_us"), false;
    config.max_latency = duration;
  } else if (key == "base_buffer") {
    if (!parse_u64(value, u) || u == 0) return fail(error, "bad base_buffer"), false;
    config.base_buffer = u;
  } else if (key == "pool_segment") {
    if (!parse_u64(value, u) || u == 0) return fail(error, "bad pool_segment"), false;
    config.pool_segment = u;
  } else if (key == "predictor") {
    if (value == "ma") config.predictor = PredictorKind::MovingAverage;
    else if (value == "kalman") config.predictor = PredictorKind::Kalman;
    else if (value == "ewma") config.predictor = PredictorKind::Ewma;
    else return fail(error, "predictor must be ma|kalman|ewma"), false;
  } else if (key == "predictor_window") {
    if (!parse_u64(value, u) || u == 0) return fail(error, "bad predictor_window"), false;
    config.predictor_window = u;
  } else if (key == "latching") {
    if (!parse_bool(value, b)) return fail(error, "bad latching"), false;
    config.latching = b;
  } else if (key == "dynamic_resize") {
    if (!parse_bool(value, b)) return fail(error, "bad dynamic_resize"), false;
    config.dynamic_resize = b;
  } else if (key == "emergency_borrow") {
    if (!parse_bool(value, b)) return fail(error, "bad emergency_borrow"), false;
    config.emergency_borrow = b;
  } else if (key == "overflow_policy") {
    if (value == "block") config.overflow_policy = OverflowPolicy::Block;
    else if (value == "drop_oldest") config.overflow_policy = OverflowPolicy::DropOldest;
    else if (value == "drop_newest") config.overflow_policy = OverflowPolicy::DropNewest;
    else if (value == "borrow") config.overflow_policy = OverflowPolicy::EmergencyBorrow;
    else return fail(error, "overflow_policy must be block|drop_oldest|drop_newest|borrow"), false;
  } else if (key == "queue_backend") {
    const auto kind = queue::parse_backend(value);
    if (!kind.has_value())
      return fail(error, "queue_backend must be mutex|spsc|mpsc"), false;
    config.queue_backend = *kind;
  } else if (key == "payload_max_bytes") {
    if (!parse_u64(value, u) || u > (std::uint64_t{1} << 30))
      return fail(error, "bad payload_max_bytes"), false;
    config.payload_max_bytes = static_cast<std::uint32_t>(u);
  } else if (key == "payload_ring_bytes") {
    if (!parse_u64(value, u)) return fail(error, "bad payload_ring_bytes"), false;
    config.payload_ring_bytes = u;
  } else if (key == "watchdog_factor") {
    if (!parse_double(value, d) || d < 0.0) return fail(error, "watchdog_factor >= 0"), false;
    config.watchdog_factor = d;
  } else if (key == "latency_guard") {
    if (!parse_bool(value, b)) return fail(error, "bad latency_guard"), false;
    config.latency_guard = b;
  } else if (key == "fill_tolerance") {
    if (!parse_double(value, d) || d < 1.0) return fail(error, "fill_tolerance >= 1"), false;
    config.fill_tolerance = d;
  } else if (key == "resize_headroom") {
    if (!parse_double(value, d) || d < 1.0) return fail(error, "resize_headroom >= 1"), false;
    config.resize_headroom = d;
  } else if (key == "manager_overhead_us") {
    if (!parse_duration_us(value, duration)) return fail(error, "bad manager_overhead_us"), false;
    config.manager_overhead = duration;
  } else if (key == "assignment") {
    if (value == "rr") config.assignment = AssignmentPolicy::RoundRobin;
    else if (value == "packed") config.assignment = AssignmentPolicy::Packed;
    else if (value == "balanced") config.assignment = AssignmentPolicy::RateBalanced;
    else return fail(error, "assignment must be rr|packed|balanced"), false;
  } else if (key == "utilization_cap") {
    if (!parse_double(value, d) || d <= 0.0) return fail(error, "bad utilization_cap"), false;
    config.utilization_cap = d;
  } else if (key == "service_per_item_us") {
    if (!parse_duration_us(value, duration)) return fail(error, "bad service_per_item_us"), false;
    config.service.per_item = duration;
  } else if (key == "service_per_invocation_us") {
    if (!parse_duration_us(value, duration))
      return fail(error, "bad service_per_invocation_us"), false;
    config.service.per_invocation = duration;
  } else if (key == "wakeup_cost_uj") {
    if (!parse_double(value, d) || d < 0.0) return fail(error, "bad wakeup_cost_uj"), false;
    config.costs.wakeup_j = d * 1e-6;
  } else if (key == "per_item_cost_uj") {
    if (!parse_double(value, d) || d < 0.0) return fail(error, "bad per_item_cost_uj"), false;
    config.costs.per_item_j = d * 1e-6;
  } else if (key == "per_invocation_cost_uj") {
    if (!parse_double(value, d) || d < 0.0)
      return fail(error, "bad per_invocation_cost_uj"), false;
    config.costs.per_invocation_j = d * 1e-6;
  } else {
    fail(error, "unknown key '" + key + "'");
    return false;
  }
  return true;
}

bool apply_options(PbplConfig& config, std::span<const std::string> assignments,
                   std::string* error) {
  for (const auto& assignment : assignments) {
    if (!apply_option(config, assignment, error)) return false;
  }
  return true;
}

std::optional<PbplConfig> load_config_file(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in.good()) {
    fail(error, "cannot open '" + path + "'");
    return std::nullopt;
  }
  PbplConfig config;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    // Trim.
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const auto last = line.find_last_not_of(" \t\r");
    const std::string trimmed = line.substr(first, last - first + 1);
    std::string inner;
    if (!apply_option(config, trimmed, &inner)) {
      fail(error, path + ":" + std::to_string(line_no) + ": " + inner);
      return std::nullopt;
    }
  }
  return config;
}

std::string describe(const PbplConfig& config) {
  std::ostringstream os;
  os << "cores=" << config.cores << '\n'
     << "slot_size_us=" << config.slot_size / 1000 << '\n'
     << "max_latency_us=" << config.max_latency / 1000 << '\n'
     << "base_buffer=" << config.base_buffer << '\n'
     << "pool_segment=" << config.pool_segment << '\n'
     << "predictor="
     << (config.predictor == PredictorKind::MovingAverage
             ? "ma"
             : (config.predictor == PredictorKind::Kalman ? "kalman" : "ewma"))
     << '\n'
     << "predictor_window=" << config.predictor_window << '\n'
     << "latching=" << (config.latching ? 1 : 0) << '\n'
     << "dynamic_resize=" << (config.dynamic_resize ? 1 : 0) << '\n'
     << "emergency_borrow=" << (config.emergency_borrow ? 1 : 0) << '\n'
     << "overflow_policy="
     << (config.overflow_policy == OverflowPolicy::Block
             ? "block"
             : (config.overflow_policy == OverflowPolicy::DropOldest
                    ? "drop_oldest"
                    : (config.overflow_policy == OverflowPolicy::DropNewest
                           ? "drop_newest"
                           : "borrow")))
     << '\n'
     << "queue_backend=" << queue::backend_name(config.queue_backend) << '\n'
     << "payload_max_bytes=" << config.payload_max_bytes << '\n'
     << "payload_ring_bytes=" << config.payload_ring_bytes << '\n'
     << "watchdog_factor=" << config.watchdog_factor << '\n'
     << "latency_guard=" << (config.latency_guard ? 1 : 0) << '\n'
     << "fill_tolerance=" << config.fill_tolerance << '\n'
     << "resize_headroom=" << config.resize_headroom << '\n'
     << "manager_overhead_us=" << config.manager_overhead / 1000 << '\n'
     << "assignment="
     << (config.assignment == AssignmentPolicy::RoundRobin
             ? "rr"
             : (config.assignment == AssignmentPolicy::Packed ? "packed" : "balanced"))
     << '\n'
     << "utilization_cap=" << config.utilization_cap << '\n'
     << "service_per_item_us=" << config.service.per_item / 1000 << '\n'
     << "service_per_invocation_us=" << config.service.per_invocation / 1000 << '\n'
     << "wakeup_cost_uj=" << config.costs.wakeup_j * 1e6 << '\n'
     << "per_item_cost_uj=" << config.costs.per_item_j * 1e6 << '\n'
     << "per_invocation_cost_uj=" << config.costs.per_invocation_j * 1e6 << '\n';
  return os.str();
}

}  // namespace pcpc::core
