#include "pcpc/sim/simulator.hpp"

namespace pcpc::sim {

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  PCPC_ASSERT_MSG(fired.time >= now_, "event queue returned an event in the past");
  now_ = fired.time;
  ++dispatched_;
  fired.fn(now_);
  return true;
}

void Simulator::run_until(SimTime until) {
  while (!queue_.empty() && queue_.next_time() <= until) {
    step();
  }
  if (now_ < until) now_ = until;
}

void Simulator::run() {
  while (step()) {
  }
}

}  // namespace pcpc::sim
