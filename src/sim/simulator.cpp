#include "pcpc/sim/simulator.hpp"

#include "pcpc/obs/obs.hpp"

namespace pcpc::sim {

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  PCPC_ASSERT_MSG(fired.time >= now_, "event queue returned an event in the past");
  now_ = fired.time;
  ++dispatched_;
  if ((dispatched_ & 0xfff) == 0) flush_obs();
  fired.fn(now_);
  return true;
}

void Simulator::run_until(SimTime until) {
  while (!queue_.empty() && queue_.next_time() <= until) {
    step();
  }
  if (now_ < until) now_ = until;
  flush_obs();
}

void Simulator::run() {
  while (step()) {
  }
  flush_obs();
}

void Simulator::flush_obs() {
  if (dispatched_ == obs_flushed_) return;
  obs::count_sim_events(dispatched_ - obs_flushed_);
  obs_flushed_ = dispatched_;
}

}  // namespace pcpc::sim
