#include "pcpc/sim/event_queue.hpp"

#include "pcpc/common/assert.hpp"

namespace pcpc::sim {

namespace {
/// Retirements between compaction sweeps.  A sweep trims the retired
/// prefix of the state array (cost proportional to what it trims), so
/// the amortized per-operation cost stays O(1).
constexpr std::size_t kCompactEvery = 4096;
}  // namespace

EventId EventQueue::schedule(SimTime t, EventFn fn) {
  PCPC_ASSERT_MSG(fn != nullptr, "cannot schedule a null event callback");
  const EventId id = next_id_++;
  states_.push_back(State::Pending);
  ++live_;
  heap_.push(Entry{t, next_seq_++, id, std::move(fn)});
  return id;
}

bool EventQueue::cancel(EventId id) {
  // The heap entry stays behind and is skipped by drop_cancelled().
  if (!is_pending(id)) return false;
  retire(id, State::Cancelled);
  return true;
}

SimTime EventQueue::next_time() const {
  drop_cancelled();
  if (heap_.empty()) return kNever;
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled();
  PCPC_ASSERT_MSG(!heap_.empty(), "pop() on empty event queue");
  const Entry& top = heap_.top();
  Fired fired{top.time, top.id, std::move(top.fn)};
  heap_.pop();
  retire(fired.id, State::Fired);
  return fired;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
  states_.clear();
  base_ = next_id_;
  live_ = 0;
  retired_ = 0;
}

void EventQueue::retire(EventId id, State to) {
  states_[static_cast<std::size_t>(id - base_)] = to;
  --live_;
  if (++retired_ >= kCompactEvery) compact();
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && !is_pending(heap_.top().id)) heap_.pop();
}

void EventQueue::compact() {
  retired_ = 0;
  if (live_ == 0) {
    // Everything issued so far is retired; stale heap entries (cancelled,
    // not yet popped off) are dropped with their stamps.
    drop_cancelled();
    states_.clear();
    base_ = next_id_;
    return;
  }
  // Trim the retired prefix.  The scan stops at the first live entry, so
  // its cost is bounded by what it reclaims.
  std::size_t prefix = 0;
  while (prefix < states_.size() && states_[prefix] != State::Pending) ++prefix;
  if (prefix > 0) {
    states_.erase(states_.begin(),
                  states_.begin() + static_cast<std::ptrdiff_t>(prefix));
    base_ += prefix;
  }
}

}  // namespace pcpc::sim
