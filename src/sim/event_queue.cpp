#include "pcpc/sim/event_queue.hpp"

#include "pcpc/common/assert.hpp"

namespace pcpc::sim {

EventId EventQueue::schedule(SimTime t, EventFn fn) {
  PCPC_ASSERT_MSG(fn != nullptr, "cannot schedule a null event callback");
  const EventId id = next_id_++;
  heap_.push(Entry{t, next_seq_++, id, std::move(fn)});
  pending_.insert(id);
  return id;
}

bool EventQueue::cancel(EventId id) {
  // The heap entry stays behind and is skipped by drop_cancelled().
  return pending_.erase(id) > 0;
}

SimTime EventQueue::next_time() const {
  drop_cancelled();
  if (heap_.empty()) return kNever;
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled();
  PCPC_ASSERT_MSG(!heap_.empty(), "pop() on empty event queue");
  const Entry& top = heap_.top();
  Fired fired{top.time, top.id, std::move(top.fn)};
  heap_.pop();
  pending_.erase(fired.id);
  return fired;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
  pending_.clear();
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && !pending_.contains(heap_.top().id)) heap_.pop();
}

}  // namespace pcpc::sim
