#include "pcpc/sim/replay.hpp"

#include "pcpc/common/assert.hpp"

namespace pcpc::sim {

namespace {

/// Self-scheduling replay chain; owns itself via shared_ptr captured in
/// the event closure and dies when the trace (or horizon) is exhausted.
struct ReplayChain : std::enable_shared_from_this<ReplayChain> {
  Simulator& simulator;
  std::span<const SimTime> timestamps;
  SimTime horizon;
  std::function<void(SimTime)> fn;
  std::size_t next = 0;

  ReplayChain(Simulator& s, std::span<const SimTime> ts, SimTime h,
              std::function<void(SimTime)> f)
      : simulator(s), timestamps(ts), horizon(h), fn(std::move(f)) {}

  void schedule_next() {
    while (next < timestamps.size() && timestamps[next] < horizon) {
      const SimTime t = timestamps[next];
      PCPC_ASSERT_MSG(t >= simulator.now(), "replay timestamps must be in the future");
      auto self = shared_from_this();
      simulator.at(t, [self](SimTime when) {
        self->fn(when);
        ++self->next;
        self->schedule_next();
      });
      return;  // one pending event at a time
    }
  }
};

}  // namespace

void replay(Simulator& simulator, std::span<const SimTime> timestamps, SimTime horizon,
            std::function<void(SimTime)> fn) {
  PCPC_ASSERT_MSG(fn != nullptr, "replay callback must be set");
  auto chain =
      std::make_shared<ReplayChain>(simulator, timestamps, horizon, std::move(fn));
  chain->schedule_next();
}

}  // namespace pcpc::sim
