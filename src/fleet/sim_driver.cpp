#include "pcpc/fleet/sim_driver.hpp"

#include "pcpc/common/assert.hpp"
#include "pcpc/obs/obs.hpp"

namespace pcpc::fleet {

SimFleetDriver::SimFleetDriver(sim::Simulator& simulator, core::PbplSystem& system,
                               FleetController& controller)
    : simulator_(simulator), system_(system), controller_(controller) {
  PCPC_ASSERT_MSG(controller_.pairs() == system_.consumer_count(),
                  "controller and system disagree on pair count");
  PCPC_ASSERT_MSG(controller_.cores() == system_.core_count(),
                  "controller and system disagree on core count");
  drained_.assign(system_.consumer_count(), 0);
}

void SimFleetDriver::start() {
  if (has_pending_) return;
  pending_ = simulator_.at(simulator_.now() + controller_.config().control_period,
                           [this](SimTime t) { tick(t); });
  has_pending_ = true;
}

void SimFleetDriver::stop() {
  if (!has_pending_) return;
  simulator_.cancel(pending_);
  has_pending_ = false;
}

void SimFleetDriver::tick(SimTime now) {
  has_pending_ = false;
  ++ticks_;
  for (std::size_t i = 0; i < drained_.size(); ++i) {
    drained_[i] = system_.consumer(i).stats().items;
  }
  controller_.observe(now, drained_);
  const FleetPlan plan = controller_.plan(now, system_.placement());
  for (const FleetMove& move : plan.moves) {
    system_.migrate_consumer(move.pair, move.to);
    ++migrations_;
    obs::note_fleet(obs::FleetAction::kMigrate, static_cast<std::uint32_t>(move.pair),
                    static_cast<std::uint16_t>(move.from),
                    static_cast<std::uint16_t>(move.to), now);
  }
  // Chain the next tick (parking is implicit on this host: a core with no
  // reservations schedules nothing and its timeline shows one long gap).
  pending_ = simulator_.at(now + controller_.config().control_period,
                           [this](SimTime t) { tick(t); });
  has_pending_ = true;
}

}  // namespace pcpc::fleet
