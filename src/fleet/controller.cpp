#include "pcpc/fleet/controller.hpp"

#include <cstring>
#include <limits>

#include "pcpc/common/assert.hpp"
#include "pcpc/core/assignment.hpp"

namespace pcpc::fleet {

const char* fleet_mode_name(FleetMode mode) {
  switch (mode) {
    case FleetMode::kOff: return "off";
    case FleetMode::kStatic: return "static";
    case FleetMode::kElastic: return "elastic";
  }
  return "?";
}

bool parse_fleet_mode(const char* text, FleetMode* mode) {
  if (text == nullptr || mode == nullptr) return false;
  if (std::strcmp(text, "off") == 0) *mode = FleetMode::kOff;
  else if (std::strcmp(text, "static") == 0) *mode = FleetMode::kStatic;
  else if (std::strcmp(text, "elastic") == 0) *mode = FleetMode::kElastic;
  else return false;
  return true;
}

FleetController::FleetController(std::size_t pairs, std::size_t cores,
                                 FleetConfig config)
    : config_(config), cores_(cores) {
  PCPC_ASSERT_MSG(pairs > 0, "fleet needs at least one pair");
  PCPC_ASSERT_MSG(cores > 0, "fleet needs at least one core");
  PCPC_ASSERT_MSG(config_.predictor_window > 0, "predictor window h must be positive");
  predictors_.reserve(pairs);
  for (std::size_t i = 0; i < pairs; ++i) {
    predictors_.emplace_back(config_.predictor_window);
  }
  last_items_.assign(pairs, 0);
  rates_.assign(pairs, 0.0);
  // Far enough in the past that the first accepted plan may move anyone.
  last_move_.assign(pairs, std::numeric_limits<SimTime>::min() / 2);
}

void FleetController::observe(SimTime now, std::span<const std::uint64_t> drained_items) {
  PCPC_ASSERT_MSG(drained_items.size() == last_items_.size(),
                  "observe() with the wrong pair count");
  if (!anchored_) {
    // First tick: anchor the cumulative baseline, no rate yet.
    std::copy(drained_items.begin(), drained_items.end(), last_items_.begin());
    last_observe_ = now;
    anchored_ = true;
    return;
  }
  const double interval_s = to_seconds(now - last_observe_);
  if (interval_s <= 0.0) return;
  for (std::size_t i = 0; i < last_items_.size(); ++i) {
    // Counters are monotone by contract; clamp defensively so a host
    // restart can never feed a negative rate into the window.
    const std::uint64_t delta =
        drained_items[i] >= last_items_[i] ? drained_items[i] - last_items_[i] : 0;
    predictors_[i].observe(static_cast<double>(delta) / interval_s);
    rates_[i] = predictors_[i].predict();
    last_items_[i] = drained_items[i];
  }
  last_observe_ = now;
  ++observations_;
}

FleetPlan FleetController::plan(SimTime now, std::span<const std::size_t> current) {
  PCPC_ASSERT_MSG(current.size() == last_items_.size(),
                  "plan() with the wrong pair count");
  FleetPlan plan;
  plan.target.assign(current.begin(), current.end());
  if (config_.mode != FleetMode::kElastic) return plan;

  std::vector<double> utilization(rates_.size());
  for (std::size_t i = 0; i < rates_.size(); ++i) {
    utilization[i] = pair_utilization(rates_[i], config_.cost);
  }
  const std::vector<std::size_t> candidate =
      core::assign_consumers(rates_.size(), cores_, core::AssignmentPolicy::Packed,
                             utilization, config_.cost.utilization_cap);

  plan.current = evaluate_placement(current, cores_, rates_, config_.cost);
  plan.candidate = evaluate_placement(candidate, cores_, rates_, config_.cost);

  // Decision: an infeasible current placement (a core over the cap, i.e.
  // the latency bound at risk) is always worth fixing; otherwise the
  // candidate must clear the hysteresis margin on joules/item.  Idle
  // fleets compare on watts — joules/item is undefined at rate 0 but
  // parking surplus cores still pays.
  const bool overloaded = !plan.current.feasible && plan.candidate.feasible;
  const double cur = plan.current.joules_per_item > 0.0 ? plan.current.joules_per_item
                                                        : plan.current.watts;
  const double cand = plan.candidate.joules_per_item > 0.0
                          ? plan.candidate.joules_per_item
                          : plan.candidate.watts;
  const bool improves = cand < cur * (1.0 - config_.hysteresis);
  plan.accepted = overloaded || (plan.candidate.feasible && improves);
  if (!plan.accepted) return plan;

  for (std::size_t i = 0; i < current.size(); ++i) {
    if (candidate[i] == current[i]) continue;
    if (now - last_move_[i] < config_.cooldown) continue;  // no flapping
    plan.moves.push_back({i, current[i], candidate[i]});
    plan.target[i] = candidate[i];
    last_move_[i] = now;
    ++planned_moves_;
  }
  return plan;
}

}  // namespace pcpc::fleet
