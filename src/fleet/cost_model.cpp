#include "pcpc/fleet/cost_model.hpp"

#include <algorithm>
#include <vector>

#include "pcpc/common/assert.hpp"

namespace pcpc::fleet {

namespace {
/// Below this rate a pair is treated as idle: it still polls at the
/// latency bound but contributes no item work worth modelling.
constexpr double kIdleRateHz = 1e-6;
}  // namespace

SimDuration pair_wake_period(double rate_hz, const CostModelParams& params) {
  if (rate_hz <= kIdleRateHz) return params.max_latency;
  const double fill_s =
      static_cast<double>(params.buffer_items) / std::max(rate_hz, kIdleRateHz);
  const auto fill = from_seconds(fill_s);
  return std::clamp<SimDuration>(fill, params.slot, params.max_latency);
}

double pair_utilization(double rate_hz, const CostModelParams& params) {
  const double per_item_s = to_seconds(params.service.per_item);
  const double per_invocation_s = to_seconds(params.service.per_invocation);
  const double period_s = to_seconds(pair_wake_period(rate_hz, params));
  if (period_s <= 0.0) return 1.0;
  return std::max(rate_hz, 0.0) * per_item_s + per_invocation_s / period_s;
}

double wakeup_cost_j(const CostModelParams& params, SimDuration gap) {
  const auto& states = params.power.cstates.states();
  PCPC_ASSERT_MSG(!states.empty(), "C-state ladder must not be empty");
  const double deepest_exit = static_cast<double>(states.back().exit_latency);
  if (deepest_exit <= 0.0) return params.power.wakeup_energy_j;
  const auto& reached = params.power.cstates.deepest_reached(std::max<SimDuration>(gap, 0));
  const double scale = static_cast<double>(reached.exit_latency) / deepest_exit;
  // A wake from the shallowest state still refills the pipeline and the
  // L1; floor the scale so packing cannot pretend shallow wakes are free.
  return params.power.wakeup_energy_j * std::max(scale, 0.25);
}

PlacementCost evaluate_placement(std::span<const std::size_t> placement,
                                 std::size_t cores, std::span<const double> rates_hz,
                                 const CostModelParams& params) {
  PCPC_ASSERT_MSG(placement.size() == rates_hz.size(),
                  "placement and rates must be parallel");
  PlacementCost cost;

  // Per-core aggregates: total rate, busy fraction, fastest wake cadence.
  std::vector<double> core_rate(cores, 0.0);
  std::vector<double> core_busy(cores, 0.0);
  std::vector<SimDuration> core_period(cores, 0);
  std::vector<double> core_invocation_s(cores, 0.0);
  for (std::size_t i = 0; i < placement.size(); ++i) {
    const std::size_t c = placement[i];
    PCPC_ASSERT_MSG(c < cores, "placement targets a core outside the fleet");
    const double r = std::max(rates_hz[i], 0.0);
    core_rate[c] += r;
    core_busy[c] += pair_utilization(r, params);
    const SimDuration period = pair_wake_period(r, params);
    core_period[c] = core_period[c] == 0 ? period : std::min(core_period[c], period);
    core_invocation_s[c] += to_seconds(params.service.per_invocation);
  }

  const double deep_idle_w = params.power.cstates.states().back().power_w;
  double total_rate = 0.0;
  for (std::size_t c = 0; c < cores; ++c) {
    if (core_period[c] == 0) {
      // Empty core: parked, deepest state, no timers — the whole point.
      cost.watts += deep_idle_w;
      continue;
    }
    ++cost.active_cores;
    if (core_busy[c] > params.utilization_cap) cost.feasible = false;
    total_rate += core_rate[c];

    // One wake cycle: the most frequent pair wakes the core (paid), the
    // core-mates latch on; everyone's batch drains in one busy window,
    // then the core sleeps one contiguous gap until the next cycle.
    const double period_s = to_seconds(core_period[c]);
    const double busy_s = std::min(
        to_seconds(params.manager_overhead) + core_invocation_s[c] +
            core_rate[c] * period_s * to_seconds(params.service.per_item),
        period_s);
    const SimDuration gap = core_period[c] - from_seconds(busy_s);
    const double cycle_j = wakeup_cost_j(params, gap) +
                           busy_s * params.power.active_power_w +
                           params.power.cstates.idle_energy(std::max<SimDuration>(gap, 0));
    cost.watts += cycle_j / period_s;
    cost.paid_wake_hz += 1.0 / period_s;
  }
  if (total_rate > kIdleRateHz) {
    // The board-level transport term is placement-invariant; include it so
    // joules/item stays comparable with the attribution reports.
    cost.joules_per_item =
        cost.watts / total_rate + params.power.item_transport_energy_j;
  }
  return cost;
}

}  // namespace pcpc::fleet
