#include "pcpc/obs/obs.hpp"

#include <algorithm>
#include <cstdio>
#include <ctime>

#include "pcpc/common/assert.hpp"

namespace pcpc::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_span_every{0};
}  // namespace detail

namespace {

std::atomic<Session*> g_session{nullptr};

/// Bumped on install/uninstall so thread-local ring caches go stale
/// without dereferencing a dead session.
std::atomic<std::uint64_t> g_session_generation{0};

/// Process CPU time (snapshot thread); CLOCK_PROCESS_CPUTIME_ID.
std::int64_t process_cpu_ns() {
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

}  // namespace

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kWakeup: return "wakeup";
    case EventKind::kSlotBatch: return "slot_batch";
    case EventKind::kReservation: return "reservation";
    case EventKind::kOverflow: return "overflow";
    case EventKind::kWatchdog: return "watchdog";
    case EventKind::kFault: return "fault";
    case EventKind::kDrop: return "drop";
    case EventKind::kQueueResize: return "queue_resize";
    case EventKind::kItemStage: return "item_stage";
    case EventKind::kFleet: return "fleet";
  }
  return "?";
}

const char* fleet_action_name(FleetAction action) {
  switch (action) {
    case FleetAction::kMigrate: return "migrate";
    case FleetAction::kPark: return "park";
    case FleetAction::kUnpark: return "unpark";
  }
  return "?";
}

const char* item_stage_name(ItemStage stage) {
  switch (stage) {
    case ItemStage::kProduce: return "produce";
    case ItemStage::kEnqueue: return "enqueue";
    case ItemStage::kDrainStart: return "drain_start";
    case ItemStage::kHandlerDone: return "handler_done";
  }
  return "?";
}

const char* overflow_action_name(OverflowAction action) {
  switch (action) {
    case OverflowAction::kEmergencyBorrow: return "emergency_borrow";
    case OverflowAction::kForcedDrain: return "forced_drain";
  }
  return "?";
}

const char* drop_path_name(DropPath path) {
  switch (path) {
    case DropPath::kOldest: return "drop_oldest";
    case DropPath::kNewest: return "drop_newest";
    case DropPath::kOnStop: return "drop_on_stop";
  }
  return "?";
}

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kBurst: return "burst";
    case FaultKind::kStall: return "stall";
    case FaultKind::kSlowHandler: return "slow_handler";
    case FaultKind::kDeadlineJitter: return "deadline_jitter";
    case FaultKind::kPoolPressure: return "pool_pressure";
    case FaultKind::kProcKill: return "proc_kill";
    case FaultKind::kProcStop: return "proc_stop";
    case FaultKind::kAttachDelay: return "attach_delay";
    case FaultKind::kLoadSwing: return "load_swing";
  }
  return "?";
}

Session::Session(SessionOptions options)
    : options_(options), epoch_(std::chrono::steady_clock::now()) {
  PCPC_ASSERT_MSG(g_session.load() == nullptr, "an obs::Session is already installed");
  well_.wakeups_paid = registry_.counter("wakeups.paid");
  well_.wakeups_free = registry_.counter("wakeups.free");
  well_.items = registry_.counter("consumer.items");
  well_.batches = registry_.counter("consumer.batches");
  well_.reservations = registry_.counter("consumer.reservations");
  well_.latched_reservations = registry_.counter("consumer.latched_reservations");
  well_.overflow_borrows = registry_.counter("overflow.emergency_borrows");
  well_.overflow_drains = registry_.counter("overflow.forced_drains");
  well_.drops = registry_.counter("drops.items");
  well_.queue_resizes = registry_.counter("queue.resizes");
  well_.watchdog_escalations = registry_.counter("watchdog.escalations");
  well_.faults_injected = registry_.counter("faults.injected");
  well_.fleet_migrations = registry_.counter("fleet.migrations");
  well_.fleet_parks = registry_.counter("fleet.parks");
  well_.fleet_unparks = registry_.counter("fleet.unparks");
  well_.sim_events = registry_.counter("sim.events_dispatched");
  well_.span_stages = registry_.counter("span.stages");
  well_.batch_ns = registry_.histogram("consumer.batch_ns");
  well_.batch_items = registry_.histogram("consumer.batch_items");

  generation_ = g_session_generation.fetch_add(1) + 1;
  g_session.store(this, std::memory_order_release);
  detail::g_span_every.store(options_.span_sample_every, std::memory_order_release);
  detail::g_enabled.store(true, std::memory_order_release);

  if (options_.snapshot_period_ms > 0) {
    snap_prev_cpu_ns_ = process_cpu_ns();
    snapshot_thread_ = std::thread([this] { snapshot_loop(); });
  }
}

Session::~Session() {
  // Disarm before tearing anything down so late note_*() calls fall
  // through the enabled() guard instead of racing the destructor.
  detail::g_enabled.store(false, std::memory_order_release);
  detail::g_span_every.store(0, std::memory_order_release);
  g_session.store(nullptr, std::memory_order_release);
  g_session_generation.fetch_add(1);
  if (snapshot_thread_.joinable()) {
    snapshot_stop_.store(true, std::memory_order_release);
    snapshot_thread_.join();
  }
}

Session* Session::current() { return g_session.load(std::memory_order_acquire); }

void Session::set_clock(std::function<std::int64_t()> now_ns) {
  std::scoped_lock lock(mutex_);
  clock_ = std::move(now_ns);
}

std::int64_t Session::now_ns() const {
  {
    std::scoped_lock lock(mutex_);
    if (clock_) return clock_();
  }
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

/// Thread-local ring cache keyed by session generation.
struct RingAccess {
  struct Cache {
    std::uint64_t generation = 0;
    TraceRing* ring = nullptr;
  };
  static Cache& cache() {
    thread_local Cache tls;
    return tls;
  }
  static TraceRing& ring(Session& session) { return session.local_ring(); }
};

TraceRing& Session::local_ring() {
  auto& cache = RingAccess::cache();
  if (cache.ring != nullptr && cache.generation == generation_) return *cache.ring;
  std::scoped_lock lock(mutex_);
  rings_.push_back(std::make_unique<TraceRing>(options_.ring_capacity));
  cache = {generation_, rings_.back().get()};
  return *cache.ring;
}

void Session::emit(const Event& event) { local_ring().push(event); }

void Session::archive_now() {
  std::scoped_lock lock(mutex_);
  for (auto& ring : rings_) {
    ring->drain([this](const Event& e) {
      if (archive_.size() < options_.archive_capacity) {
        archive_.push_back(e);
      } else {
        ++archive_dropped_;
      }
    });
  }
}

std::vector<Event> Session::events() {
  archive_now();
  std::scoped_lock lock(mutex_);
  std::vector<Event> out = archive_;
  std::stable_sort(out.begin(), out.end(),
                   [](const Event& a, const Event& b) { return a.ts_ns < b.ts_ns; });
  return out;
}

std::uint64_t Session::ring_dropped() const {
  std::scoped_lock lock(mutex_);
  std::uint64_t dropped = 0;
  for (const auto& ring : rings_) dropped += ring->dropped();
  return dropped;
}

std::uint64_t Session::archive_dropped() const {
  std::scoped_lock lock(mutex_);
  return archive_dropped_;
}

std::uint64_t Session::total_events_recorded() const {
  std::scoped_lock lock(mutex_);
  std::uint64_t pushed = 0;
  for (const auto& ring : rings_) pushed += ring->pushed();
  return pushed;
}

void Session::snapshot_loop() {
  const auto period = std::chrono::milliseconds(options_.snapshot_period_ms);
  auto next = std::chrono::steady_clock::now() + period;
  while (!snapshot_stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_until(next);
    if (snapshot_stop_.load(std::memory_order_acquire)) break;
    print_snapshot(static_cast<double>(options_.snapshot_period_ms) / 1e3);
    archive_now();  // keep early events even when rings would wrap
    next += period;
  }
}

void Session::print_snapshot(double dt_s) {
  const Registry::Snapshot snapshot = registry_.collect();
  const std::uint64_t wakeups = snapshot.counter_value("wakeups.paid") +
                                snapshot.counter_value("wakeups.free");
  const std::uint64_t items = snapshot.counter_value("consumer.items");
  const std::uint64_t drops = snapshot.counter_value("drops.items");
  const std::int64_t cpu = process_cpu_ns();
  std::fprintf(stderr,
               "[pcpc obs] wakeups/s %8.1f | CPU ms/s %7.2f | items/s %9.1f | "
               "drops/s %7.1f | trace events %llu (dropped %llu)\n",
               static_cast<double>(wakeups - snap_prev_wakeups_) / dt_s,
               static_cast<double>(cpu - snap_prev_cpu_ns_) / 1e6 / dt_s,
               static_cast<double>(items - snap_prev_items_) / dt_s,
               static_cast<double>(drops - snap_prev_drops_) / dt_s,
               static_cast<unsigned long long>(total_events_recorded()),
               static_cast<unsigned long long>(ring_dropped()));
  snap_prev_wakeups_ = wakeups;
  snap_prev_items_ = items;
  snap_prev_drops_ = drops;
  snap_prev_cpu_ns_ = cpu;
}

namespace detail {

namespace {

/// Everything one note_*() call touches, resolved once per thread per
/// session: direct pointers to this thread's counter cells, histogram
/// bin arrays and trace ring.  One generation check replaces the
/// session-pointer acquire plus two to four independent TLS cache
/// lookups the naive path pays per event — at tens of thousands of
/// wakeups per simulated second that difference is the overhead budget.
struct HotPath {
  std::uint64_t generation = 0;
  Session* session = nullptr;
  TraceRing* ring = nullptr;
  std::atomic<std::uint64_t>* wakeups_paid = nullptr;
  std::atomic<std::uint64_t>* wakeups_free = nullptr;
  std::atomic<std::uint64_t>* items = nullptr;
  std::atomic<std::uint64_t>* batches = nullptr;
  std::atomic<std::uint64_t>* reservations = nullptr;
  std::atomic<std::uint64_t>* latched_reservations = nullptr;
  std::atomic<std::uint64_t>* overflow_borrows = nullptr;
  std::atomic<std::uint64_t>* overflow_drains = nullptr;
  std::atomic<std::uint64_t>* drops = nullptr;
  std::atomic<std::uint64_t>* queue_resizes = nullptr;
  std::atomic<std::uint64_t>* watchdog_escalations = nullptr;
  std::atomic<std::uint64_t>* faults_injected = nullptr;
  std::atomic<std::uint64_t>* fleet_migrations = nullptr;
  std::atomic<std::uint64_t>* fleet_parks = nullptr;
  std::atomic<std::uint64_t>* fleet_unparks = nullptr;
  std::atomic<std::uint64_t>* sim_events = nullptr;
  std::atomic<std::uint64_t>* span_stages = nullptr;
  std::atomic<std::uint64_t>* batch_ns_bins = nullptr;
  std::atomic<std::uint64_t>* batch_items_bins = nullptr;
};

/// Single-writer bump: the cells belong to this thread's shard.
void inc(std::atomic<std::uint64_t>* cell, std::uint64_t delta = 1) {
  cell->store(cell->load(std::memory_order_relaxed) + delta,
              std::memory_order_relaxed);
}

/// Returns the calling thread's resolved hot path, or nullptr when no
/// session is installed.  The generation is read (acquire) *before* any
/// cached pointer is trusted, so a torn-down session is never touched.
HotPath* hot_path() {
  thread_local HotPath tls;
  const std::uint64_t generation = g_session_generation.load(std::memory_order_acquire);
  if (tls.session != nullptr && tls.generation == generation) return &tls;
  Session* s = Session::current();
  if (s == nullptr) {
    tls.session = nullptr;
    return nullptr;
  }
  Registry& r = s->registry();
  const WellKnownMetrics& w = s->well();
  tls.ring = &RingAccess::ring(*s);
  tls.wakeups_paid = r.counter_cell(w.wakeups_paid);
  tls.wakeups_free = r.counter_cell(w.wakeups_free);
  tls.items = r.counter_cell(w.items);
  tls.batches = r.counter_cell(w.batches);
  tls.reservations = r.counter_cell(w.reservations);
  tls.latched_reservations = r.counter_cell(w.latched_reservations);
  tls.overflow_borrows = r.counter_cell(w.overflow_borrows);
  tls.overflow_drains = r.counter_cell(w.overflow_drains);
  tls.drops = r.counter_cell(w.drops);
  tls.queue_resizes = r.counter_cell(w.queue_resizes);
  tls.watchdog_escalations = r.counter_cell(w.watchdog_escalations);
  tls.faults_injected = r.counter_cell(w.faults_injected);
  tls.fleet_migrations = r.counter_cell(w.fleet_migrations);
  tls.fleet_parks = r.counter_cell(w.fleet_parks);
  tls.fleet_unparks = r.counter_cell(w.fleet_unparks);
  tls.sim_events = r.counter_cell(w.sim_events);
  tls.span_stages = r.counter_cell(w.span_stages);
  tls.batch_ns_bins = r.histogram_bins(w.batch_ns);
  tls.batch_items_bins = r.histogram_bins(w.batch_items);
  tls.session = s;
  tls.generation = generation;
  return &tls;
}

}  // namespace

void note_wakeup_impl(std::uint16_t core, std::uint32_t consumer, std::int64_t slot,
                      bool paid, bool scheduled, std::int64_t ts_ns) {
  HotPath* h = hot_path();
  if (h == nullptr) return;
  inc(paid ? h->wakeups_paid : h->wakeups_free);
  h->session->ledger().record(core, consumer, paid);
  Event e;
  e.ts_ns = ts_ns;
  e.arg0 = slot;
  e.consumer = consumer;
  e.core = core;
  e.kind = EventKind::kWakeup;
  e.flags = static_cast<std::uint8_t>((paid ? kFlagPaid : 0) |
                                      (scheduled ? kFlagScheduled : 0));
  h->ring->push(e);
}

void note_slot_batch_impl(std::uint16_t core, std::uint32_t consumer, std::int64_t slot,
                          std::uint64_t batch, std::int64_t ts_ns, std::int64_t dur_ns) {
  HotPath* h = hot_path();
  if (h == nullptr) return;
  inc(h->items, batch);
  inc(h->batches);
  h->session->ledger().record_batch(core, consumer, batch);
  inc(h->batch_ns_bins + Registry::log2_bin(dur_ns));
  inc(h->batch_items_bins + Registry::log2_bin(static_cast<std::int64_t>(batch)));
  Event e;
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  e.arg0 = slot;
  e.arg1 = static_cast<std::int64_t>(batch);
  e.consumer = consumer;
  e.core = core;
  e.kind = EventKind::kSlotBatch;
  h->ring->push(e);
}

void note_reservation_impl(std::uint16_t core, std::uint32_t consumer, std::int64_t slot,
                           bool latched, std::int64_t ts_ns) {
  HotPath* h = hot_path();
  if (h == nullptr) return;
  inc(h->reservations);
  if (latched) inc(h->latched_reservations);
  Event e;
  e.ts_ns = ts_ns;
  e.arg0 = slot;
  e.arg1 = latched ? 1 : 0;
  e.consumer = consumer;
  e.core = core;
  e.kind = EventKind::kReservation;
  h->ring->push(e);
}

void note_overflow_impl(std::uint16_t core, std::uint32_t consumer, OverflowAction action,
                        std::int64_t ts_ns) {
  HotPath* h = hot_path();
  if (h == nullptr) return;
  inc(action == OverflowAction::kEmergencyBorrow ? h->overflow_borrows
                                                 : h->overflow_drains);
  Event e;
  e.ts_ns = ts_ns;
  e.arg0 = static_cast<std::int64_t>(action);
  e.consumer = consumer;
  e.core = core;
  e.kind = EventKind::kOverflow;
  h->ring->push(e);
}

void note_watchdog_impl(std::uint16_t core, std::int64_t overrun_ns, std::int64_t ts_ns) {
  HotPath* h = hot_path();
  if (h == nullptr) return;
  inc(h->watchdog_escalations);
  Event e;
  e.ts_ns = ts_ns;
  e.arg0 = overrun_ns;
  e.core = core;
  e.kind = EventKind::kWatchdog;
  h->ring->push(e);
}

void note_fault_impl(FaultKind kind, std::int64_t magnitude) {
  HotPath* h = hot_path();
  if (h == nullptr) return;
  inc(h->faults_injected);
  Event e;
  e.ts_ns = h->session->now_ns();
  e.arg0 = static_cast<std::int64_t>(kind);
  e.arg1 = magnitude;
  e.kind = EventKind::kFault;
  h->ring->push(e);
}

void note_drop_impl(std::uint32_t consumer, DropPath path, std::int64_t ts_ns) {
  HotPath* h = hot_path();
  if (h == nullptr) return;
  inc(h->drops);
  h->session->ledger().record_drop(consumer);
  Event e;
  e.ts_ns = ts_ns;
  e.arg0 = static_cast<std::int64_t>(path);
  e.consumer = consumer;
  e.kind = EventKind::kDrop;
  h->ring->push(e);
}

void note_queue_resize_impl(std::uint32_t consumer, std::size_t old_slots,
                            std::size_t new_slots) {
  HotPath* h = hot_path();
  if (h == nullptr) return;
  inc(h->queue_resizes);
  Event e;
  e.ts_ns = h->session->now_ns();
  e.arg0 = static_cast<std::int64_t>(old_slots);
  e.arg1 = static_cast<std::int64_t>(new_slots);
  e.consumer = consumer;
  e.kind = EventKind::kQueueResize;
  h->ring->push(e);
}

void note_fleet_impl(FleetAction action, std::uint32_t pair, std::uint16_t from_core,
                     std::uint16_t to_core, std::int64_t ts_ns) {
  HotPath* h = hot_path();
  if (h == nullptr) return;
  switch (action) {
    case FleetAction::kMigrate: inc(h->fleet_migrations); break;
    case FleetAction::kPark: inc(h->fleet_parks); break;
    case FleetAction::kUnpark: inc(h->fleet_unparks); break;
  }
  Event e;
  e.ts_ns = ts_ns;
  e.arg0 = static_cast<std::int64_t>(action);
  e.arg1 = static_cast<std::int64_t>(to_core);
  e.consumer = pair;
  e.core = from_core;
  e.kind = EventKind::kFleet;
  h->ring->push(e);
}

void count_sim_events_impl(std::uint64_t n) {
  HotPath* h = hot_path();
  if (h == nullptr) return;
  inc(h->sim_events, n);
}

void note_item_stage_impl(std::uint32_t consumer, std::uint16_t core,
                          std::uint64_t item_id, ItemStage stage, std::int64_t ts_ns) {
  HotPath* h = hot_path();
  if (h == nullptr) return;
  inc(h->span_stages);
  Event e;
  e.ts_ns = ts_ns;
  e.arg0 = static_cast<std::int64_t>(item_id);
  e.arg1 = static_cast<std::int64_t>(stage);
  e.consumer = consumer;
  e.core = core;
  e.kind = EventKind::kItemStage;
  h->ring->push(e);
}

}  // namespace detail

}  // namespace pcpc::obs
