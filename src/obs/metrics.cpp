#include "pcpc/obs/metrics.hpp"

#include <algorithm>
#include <bit>

namespace pcpc::obs {

namespace {

/// Global generation stamp so a thread-local shard cache can recognise a
/// new Registry that happens to reuse a freed one's address.
std::atomic<std::uint64_t> g_registry_generation{0};

/// Monotonic sequence for gauge writes: collect() keeps the write with
/// the highest sequence, which is the most recent across shards.
std::atomic<std::uint64_t> g_gauge_sequence{0};

Registry::Id intern(std::vector<std::string>& names, const std::string& name,
                    std::size_t capacity) {
  const auto it = std::find(names.begin(), names.end(), name);
  if (it != names.end()) return static_cast<Registry::Id>(it - names.begin());
  PCPC_ASSERT_MSG(names.size() < capacity, "obs::Registry capacity exhausted");
  names.push_back(name);
  return static_cast<Registry::Id>(names.size() - 1);
}

}  // namespace

struct Registry::Shard {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<std::atomic<std::int64_t>, kMaxGauges> gauges{};
  std::array<std::atomic<std::uint64_t>, kMaxGauges> gauge_seq{};
  std::array<std::array<std::atomic<std::uint64_t>, kHistogramBins>, kMaxHistograms>
      histograms{};
};

/// Thread-local shard cache, validated by registry address + generation
/// (no dereference of a possibly-dead registry on the miss path).
struct ShardAccess {
  struct Cache {
    const Registry* owner = nullptr;
    std::uint64_t generation = 0;
    Registry::Shard* shard = nullptr;
  };
  static Cache& cache() {
    thread_local Cache tls;
    return tls;
  }
};

Registry::Registry() : generation_(g_registry_generation.fetch_add(1) + 1) {}

Registry::~Registry() = default;

Registry::Id Registry::counter(const std::string& name) {
  std::scoped_lock lock(mutex_);
  return intern(counter_names_, name, kMaxCounters);
}

Registry::Id Registry::gauge(const std::string& name) {
  std::scoped_lock lock(mutex_);
  return intern(gauge_names_, name, kMaxGauges);
}

Registry::Id Registry::histogram(const std::string& name) {
  std::scoped_lock lock(mutex_);
  return intern(histogram_names_, name, kMaxHistograms);
}

Registry::Shard& Registry::local_shard() {
  auto& cache = ShardAccess::cache();
  if (cache.owner == this && cache.generation == generation_) return *cache.shard;
  std::scoped_lock lock(mutex_);
  shards_.push_back(std::make_unique<Shard>());
  cache = {this, generation_, shards_.back().get()};
  return *cache.shard;
}

void Registry::add(Id id, std::uint64_t delta) {
  PCPC_ASSERT(id < kMaxCounters);
  // Single-writer counters: each shard belongs to exactly one thread, so
  // a relaxed load+store increment is race-free and skips the lock
  // prefix a fetch_add would pay — this is the hottest line in the whole
  // subsystem (once per simulator event).
  std::atomic<std::uint64_t>& cell = local_shard().counters[id];
  cell.store(cell.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

std::atomic<std::uint64_t>* Registry::counter_cell(Id id) {
  PCPC_ASSERT(id < kMaxCounters);
  return &local_shard().counters[id];
}

std::atomic<std::uint64_t>* Registry::histogram_bins(Id id) {
  PCPC_ASSERT(id < kMaxHistograms);
  return local_shard().histograms[id].data();
}

void Registry::set_gauge(Id id, std::int64_t value) {
  PCPC_ASSERT(id < kMaxGauges);
  Shard& shard = local_shard();
  shard.gauges[id].store(value, std::memory_order_relaxed);
  shard.gauge_seq[id].store(g_gauge_sequence.fetch_add(1) + 1,
                            std::memory_order_relaxed);
}

void Registry::observe(Id id, std::int64_t value) {
  PCPC_ASSERT(id < kMaxHistograms);
  std::atomic<std::uint64_t>& bin = local_shard().histograms[id][log2_bin(value)];
  bin.store(bin.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
}

Registry::Snapshot Registry::collect() const {
  std::scoped_lock lock(mutex_);
  Snapshot snapshot;
  snapshot.counters.resize(counter_names_.size());
  snapshot.gauges.resize(gauge_names_.size());
  snapshot.histograms.resize(histogram_names_.size());
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    snapshot.counters[i].name = counter_names_[i];
  }
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    snapshot.gauges[i].name = gauge_names_[i];
  }
  for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
    snapshot.histograms[i].name = histogram_names_[i];
  }
  std::vector<std::uint64_t> gauge_best_seq(gauge_names_.size(), 0);
  for (const auto& shard : shards_) {
    for (std::size_t i = 0; i < counter_names_.size(); ++i) {
      snapshot.counters[i].value +=
          shard->counters[i].load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
      const std::uint64_t seq = shard->gauge_seq[i].load(std::memory_order_relaxed);
      if (seq > gauge_best_seq[i]) {
        gauge_best_seq[i] = seq;
        snapshot.gauges[i].value = shard->gauges[i].load(std::memory_order_relaxed);
      }
    }
    for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
      for (std::size_t b = 0; b < kHistogramBins; ++b) {
        const std::uint64_t n = shard->histograms[i][b].load(std::memory_order_relaxed);
        snapshot.histograms[i].bins[b] += n;
        snapshot.histograms[i].total += n;
      }
    }
  }
  return snapshot;
}

std::size_t Registry::shard_count() const {
  std::scoped_lock lock(mutex_);
  return shards_.size();
}

std::uint64_t Registry::Snapshot::counter_value(const std::string& name) const {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

}  // namespace pcpc::obs
