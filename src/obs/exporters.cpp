#include "pcpc/obs/exporters.hpp"

#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>

namespace pcpc::obs {

namespace {

/// Minimal JSON string escaping (metric names and labels are ASCII, but
/// never trust a name you didn't write).
std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Microsecond timestamp for the Chrome trace format.
double to_us(std::int64_t ns) { return static_cast<double>(ns) / 1e3; }

void write_event_args(std::ostream& out, const Event& e) {
  out << "{\"consumer\":" << static_cast<std::int64_t>(
             e.consumer == kNoConsumer ? -1 : static_cast<std::int64_t>(e.consumer));
  switch (e.kind) {
    case EventKind::kWakeup:
      out << ",\"slot\":" << (e.arg0 == kNoSlot ? -1 : e.arg0)
          << ",\"paid\":" << (e.paid() ? 1 : 0)
          << ",\"scheduled\":" << (e.scheduled() ? 1 : 0);
      break;
    case EventKind::kSlotBatch:
      out << ",\"slot\":" << (e.arg0 == kNoSlot ? -1 : e.arg0)
          << ",\"batch\":" << e.arg1;
      break;
    case EventKind::kReservation:
      out << ",\"slot\":" << e.arg0 << ",\"latched\":" << e.arg1;
      break;
    case EventKind::kOverflow:
      out << ",\"action\":\""
          << overflow_action_name(static_cast<OverflowAction>(e.arg0)) << '"';
      break;
    case EventKind::kWatchdog:
      out << ",\"overrun_ns\":" << e.arg0;
      break;
    case EventKind::kFault:
      out << ",\"fault\":\"" << fault_kind_name(static_cast<FaultKind>(e.arg0))
          << "\",\"magnitude\":" << e.arg1;
      break;
    case EventKind::kDrop:
      out << ",\"path\":\"" << drop_path_name(static_cast<DropPath>(e.arg0)) << '"';
      break;
    case EventKind::kQueueResize:
      out << ",\"old_slots\":" << e.arg0 << ",\"new_slots\":" << e.arg1;
      break;
    case EventKind::kItemStage:
      out << ",\"item\":" << e.arg0 << ",\"stage\":\""
          << item_stage_name(static_cast<ItemStage>(e.arg1)) << '"';
      break;
    case EventKind::kFleet:
      out << ",\"action\":\"" << fleet_action_name(static_cast<FleetAction>(e.arg0))
          << "\",\"to_core\":" << e.arg1;
      break;
  }
  out << '}';
}

/// Display name of one trace event, e.g. "wakeup paid c2".
std::string event_display_name(const Event& e) {
  std::ostringstream name;
  name << event_kind_name(e.kind);
  if (e.kind == EventKind::kWakeup) name << (e.paid() ? " paid" : " free");
  if (e.kind == EventKind::kItemStage) {
    name << ' ' << item_stage_name(static_cast<ItemStage>(e.arg1));
  }
  if (e.kind == EventKind::kFleet) {
    name << ' ' << fleet_action_name(static_cast<FleetAction>(e.arg0));
  }
  if (e.consumer != kNoConsumer) name << " c" << e.consumer;
  return name.str();
}

/// Perfetto pid of an event: origins map to distinct process tracks in
/// the merged cross-process trace (origin 0 = the exporting process,
/// origin k = ipc producer registry slot k-1's process).
int event_pid(const Event& e) { return 1 + e.origin; }

template <typename WriteFn>
bool write_file(const std::string& path, std::string* error, WriteFn&& fn) {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  fn(out);
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

void write_ledger_json(std::ostream& out, const WakeupLedger& ledger) {
  out << "{\"paid\":" << ledger.paid_total() << ",\"free\":" << ledger.free_total();
  out << ",\"per_consumer\":[";
  const auto consumers = ledger.per_consumer();
  for (std::size_t i = 0; i < consumers.size(); ++i) {
    if (i > 0) out << ',';
    out << "{\"consumer\":" << i << ",\"paid\":" << consumers[i].paid
        << ",\"free\":" << consumers[i].free << '}';
  }
  out << "],\"per_core\":[";
  const auto cores = ledger.per_core();
  for (std::size_t i = 0; i < cores.size(); ++i) {
    if (i > 0) out << ',';
    out << "{\"core\":" << i << ",\"paid\":" << cores[i].paid
        << ",\"free\":" << cores[i].free << '}';
  }
  out << "]}";
}

}  // namespace

void write_perfetto_trace(std::ostream& out, Session& session) {
  const std::vector<Event> events = session.events();
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  out << std::setprecision(15);

  // Process/track metadata: one Perfetto "process" per event origin
  // (this process + each merged ipc producer), one "thread" per core
  // within it, so a merged cross-process trace renders each process's
  // cores as separate lanes.  All origins share the segment-epoch clock
  // domain, so no per-track offset is needed.
  std::map<std::uint16_t, std::uint16_t> origin_max_core;
  for (const Event& e : events) {
    auto [it, fresh] = origin_max_core.try_emplace(e.origin, e.core);
    if (!fresh) it->second = std::max(it->second, e.core);
  }
  if (origin_max_core.empty()) origin_max_core[kOriginLocal] = 0;
  bool first = true;
  for (const auto& [origin, max_core] : origin_max_core) {
    if (!first) out << ',';
    first = false;
    out << "{\"ph\":\"M\",\"pid\":" << (1 + origin)
        << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"";
    if (origin == kOriginLocal) {
      out << "pcpc";
    } else {
      out << "pcpc producer " << (origin - 1);
    }
    out << "\"}}";
    for (std::uint16_t c = 0; c <= max_core; ++c) {
      out << ",{\"ph\":\"M\",\"pid\":" << (1 + origin) << ",\"tid\":" << (c + 1)
          << ",\"name\":\"thread_name\",\"args\":{\"name\":\"core " << c << "\"}}";
    }
  }

  // Sampled lifecycle spans become flow-connected slices: each stage is
  // a slice lasting until the item's next stage on the same track, and a
  // flow (cat "item_flow", id = item id) threads the stages across
  // process/core tracks.  Group stage events by item id first.
  std::map<std::int64_t, std::vector<std::size_t>> span_stages;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].kind == EventKind::kItemStage) {
      span_stages[events[i].arg0].push_back(i);
    }
  }

  for (const Event& e : events) {
    if (e.kind == EventKind::kItemStage) continue;  // emitted with their flow below
    out << ",{\"name\":\"" << json_escape(event_display_name(e)) << "\",\"cat\":\""
        << event_kind_name(e.kind) << "\",\"pid\":" << event_pid(e)
        << ",\"tid\":" << (e.core + 1) << ",\"ts\":" << to_us(e.ts_ns);
    if (e.kind == EventKind::kSlotBatch) {
      out << ",\"ph\":\"X\",\"dur\":" << to_us(e.dur_ns);
    } else {
      out << ",\"ph\":\"i\",\"s\":\"t\"";
    }
    out << ",\"args\":";
    write_event_args(out, e);
    out << '}';
  }

  for (const auto& [item, stages] : span_stages) {
    for (std::size_t i = 0; i < stages.size(); ++i) {
      const Event& e = events[stages[i]];
      // Slice until the item's next stage on the same track (produce →
      // enqueue on the producer, drain-start → handler-done on the
      // consumer); terminal stages get a minimal visible width.
      std::int64_t dur_ns = 1000;
      if (i + 1 < stages.size()) {
        const Event& next = events[stages[i + 1]];
        if (next.origin == e.origin && next.core == e.core) {
          dur_ns = std::max<std::int64_t>(next.ts_ns - e.ts_ns, 0);
        }
      }
      out << ",{\"name\":\"" << json_escape(event_display_name(e))
          << "\",\"cat\":\"item_stage\",\"pid\":" << event_pid(e)
          << ",\"tid\":" << (e.core + 1) << ",\"ts\":" << to_us(e.ts_ns)
          << ",\"ph\":\"X\",\"dur\":" << to_us(dur_ns) << ",\"args\":";
      write_event_args(out, e);
      out << '}';
      if (stages.size() < 2) continue;
      // The flow arrow binds to the slice just emitted.
      const char* ph = i == 0 ? "s" : (i + 1 == stages.size() ? "f" : "t");
      out << ",{\"name\":\"item\",\"cat\":\"item_flow\",\"id\":" << item
          << ",\"pid\":" << event_pid(e) << ",\"tid\":" << (e.core + 1)
          << ",\"ts\":" << to_us(e.ts_ns) << ",\"ph\":\"" << ph << '"';
      if (*ph == 'f') out << ",\"bp\":\"e\"";
      out << '}';
    }
  }

  out << "],\"otherData\":{\"tool\":\"pcpc::obs\",\"events\":" << events.size()
      << ",\"dropped_ring\":" << session.ring_dropped()
      << ",\"dropped_archive\":" << session.archive_dropped() << "}}";
}

bool write_perfetto_trace(const std::string& path, Session& session,
                          std::string* error) {
  return write_file(path, error,
                    [&session](std::ostream& out) { write_perfetto_trace(out, session); });
}

void write_metrics_json(std::ostream& out, Session& session) {
  const Registry::Snapshot snapshot = session.registry().collect();
  out << "{\"counters\":{";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out << ',';
    out << '"' << json_escape(snapshot.counters[i].name)
        << "\":" << snapshot.counters[i].value;
  }
  out << "},\"gauges\":{";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) out << ',';
    out << '"' << json_escape(snapshot.gauges[i].name)
        << "\":" << snapshot.gauges[i].value;
  }
  out << "},\"histograms\":{";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    if (i > 0) out << ',';
    out << '"' << json_escape(h.name) << "\":{\"total\":" << h.total
        << ",\"log2_bins\":[";
    // Trailing zero bins are elided; the bin index is implicit.
    std::size_t last = 0;
    for (std::size_t b = 0; b < h.bins.size(); ++b) {
      if (h.bins[b] != 0) last = b + 1;
    }
    for (std::size_t b = 0; b < last; ++b) {
      if (b > 0) out << ',';
      out << h.bins[b];
    }
    out << "]}";
  }
  out << "},\"wakeups\":";
  write_ledger_json(out, session.ledger());
  out << ",\"trace\":{\"recorded\":" << session.total_events_recorded()
      << ",\"dropped_ring\":" << session.ring_dropped()
      << ",\"dropped_archive\":" << session.archive_dropped() << "}}";
}

bool write_metrics_json(const std::string& path, Session& session, std::string* error) {
  return write_file(path, error,
                    [&session](std::ostream& out) { write_metrics_json(out, session); });
}

void write_metrics_csv(std::ostream& out, Session& session) {
  const Registry::Snapshot snapshot = session.registry().collect();
  out << "metric,kind,value\n";
  for (const auto& c : snapshot.counters) {
    out << c.name << ",counter," << c.value << '\n';
  }
  for (const auto& g : snapshot.gauges) {
    out << g.name << ",gauge," << g.value << '\n';
  }
  for (const auto& h : snapshot.histograms) {
    out << h.name << ".count,histogram," << h.total << '\n';
  }
  const WakeupLedger& ledger = session.ledger();
  out << "wakeups.ledger.paid,counter," << ledger.paid_total() << '\n';
  out << "wakeups.ledger.free,counter," << ledger.free_total() << '\n';
  const auto consumers = ledger.per_consumer();
  for (std::size_t i = 0; i < consumers.size(); ++i) {
    out << "wakeups.consumer." << i << ".paid,counter," << consumers[i].paid << '\n';
    out << "wakeups.consumer." << i << ".free,counter," << consumers[i].free << '\n';
  }
  out << "trace.recorded,counter," << session.total_events_recorded() << '\n';
  out << "trace.dropped_ring,counter," << session.ring_dropped() << '\n';
  out << "trace.dropped_archive,counter," << session.archive_dropped() << '\n';
}

bool write_metrics_csv(const std::string& path, Session& session, std::string* error) {
  return write_file(path, error,
                    [&session](std::ostream& out) { write_metrics_csv(out, session); });
}

}  // namespace pcpc::obs
