#include "pcpc/obs/spans.hpp"

#include <algorithm>

namespace pcpc::obs {

void StageHistogram::add(std::int64_t ns) {
  if (ns < 0) ns = 0;
  if (count == 0) {
    min_ns = max_ns = ns;
  } else {
    min_ns = std::min(min_ns, ns);
    max_ns = std::max(max_ns, ns);
  }
  ++count;
  ++bins[Registry::log2_bin(ns)];
}

namespace {

/// Wakeup timeline of one (origin, core) track, for the wake join.
struct WakeTrack {
  std::vector<std::int64_t> ts;  ///< sorted (events arrive ts-sorted)
  std::vector<bool> paid;
};

}  // namespace

SpanFold fold_spans(const std::vector<Event>& events) {
  SpanFold fold;
  // Key items by (pair-agnostic) item id: the id already encodes the
  // pair on the thread/sim hosts (consumer << 32 | seq) and the ticket
  // is globally unique on the ipc host.
  std::map<std::uint64_t, ItemSpan> items;
  std::map<std::uint32_t, WakeTrack> wakes;  ///< key: origin << 16 | core

  for (const Event& e : events) {
    if (e.kind == EventKind::kWakeup) {
      WakeTrack& track =
          wakes[(static_cast<std::uint32_t>(e.origin) << 16) | e.core];
      track.ts.push_back(e.ts_ns);
      track.paid.push_back(e.paid());
      continue;
    }
    if (e.kind != EventKind::kItemStage) continue;
    ++fold.stage_events;
    ItemSpan& span = items[static_cast<std::uint64_t>(e.arg0)];
    span.item_id = static_cast<std::uint64_t>(e.arg0);
    switch (static_cast<ItemStage>(e.arg1)) {
      case ItemStage::kProduce:
        span.produce_ns = e.ts_ns;
        span.pair = e.consumer;
        span.produce_origin = e.origin;
        break;
      case ItemStage::kEnqueue:
        span.enqueue_ns = e.ts_ns;
        break;
      case ItemStage::kDrainStart:
        span.drain_start_ns = e.ts_ns;
        // Join the wake stage: latest ledger wakeup on the draining
        // track at or before this drain-start.  The drain event and the
        // wakeup it rode on may carry equal timestamps (sim host), so
        // the bound is inclusive (upper_bound, then step back).
        {
          const auto it = wakes.find(
              (static_cast<std::uint32_t>(e.origin) << 16) | e.core);
          if (it != wakes.end() && !it->second.ts.empty()) {
            const auto& ts = it->second.ts;
            const auto pos = std::upper_bound(ts.begin(), ts.end(), e.ts_ns);
            if (pos != ts.begin()) {
              const std::size_t i = static_cast<std::size_t>(pos - ts.begin()) - 1;
              span.wake_ns = ts[i];
              span.wake_paid = it->second.paid[i];
            }
          }
        }
        break;
      case ItemStage::kHandlerDone:
        span.handler_done_ns = e.ts_ns;
        break;
    }
  }

  fold.items.reserve(items.size());
  for (auto& [id, span] : items) {
    (void)id;
    if (span.complete()) {
      ++fold.complete_items;
      fold.produce_to_enqueue.add(span.enqueue_ns - span.produce_ns);
      fold.enqueue_to_drain.add(span.drain_start_ns - span.enqueue_ns);
      fold.drain_to_done.add(span.handler_done_ns - span.drain_start_ns);
      fold.end_to_end.add(span.end_to_end_ns());
      if (span.wake_ns >= 0) {
        ++fold.joined_wakes;
        if (span.wake_paid) ++fold.joined_paid_wakes;
        fold.wake_to_drain.add(span.drain_start_ns - span.wake_ns);
      }
    } else {
      fold.orphan_stages +=
          static_cast<std::uint64_t>(span.produce_ns >= 0) +
          static_cast<std::uint64_t>(span.enqueue_ns >= 0) +
          static_cast<std::uint64_t>(span.drain_start_ns >= 0) +
          static_cast<std::uint64_t>(span.handler_done_ns >= 0);
    }
    fold.items.push_back(std::move(span));
  }
  return fold;
}

}  // namespace pcpc::obs
