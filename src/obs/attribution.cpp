#include "pcpc/obs/attribution.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "pcpc/obs/obs.hpp"

namespace pcpc::obs {

double attributed_joules(const AttributionOptions& opt, std::uint64_t paid,
                         std::uint64_t items, std::uint64_t batches) {
  const double per_item_j =
      opt.power.item_transport_energy_j +
      static_cast<double>(opt.service.per_item) * 1e-9 * opt.power.active_power_w;
  const double per_batch_j = static_cast<double>(opt.service.per_invocation) * 1e-9 *
                             opt.power.active_power_w;
  return static_cast<double>(paid) * opt.power.wakeup_energy_j +
         static_cast<double>(items) * per_item_j +
         static_cast<double>(batches) * per_batch_j;
}

namespace {

double ratio(double num, std::uint64_t den) {
  return den == 0 ? 0.0 : num / static_cast<double>(den);
}

PairAttribution& pair_row(AttributionReport& report, std::uint32_t pair) {
  for (PairAttribution& row : report.pairs) {
    if (row.pair == pair) return row;
  }
  report.pairs.emplace_back();
  report.pairs.back().pair = pair;
  return report.pairs.back();
}

}  // namespace

void finalize_attribution(AttributionReport& report, const AttributionOptions& opt) {
  report.delta_ns = opt.delta_ns;

  // SLO rows: every complete sampled span with a known pair is one
  // Δ-budget sample of that pair.
  if (opt.delta_ns > 0) {
    for (const ItemSpan& span : report.spans.items) {
      if (!span.complete() || span.pair == kNoConsumer) continue;
      PairAttribution& row = pair_row(report, span.pair);
      ++row.slo_samples;
      const std::int64_t e2e = span.end_to_end_ns();
      if (e2e > opt.delta_ns) {
        ++row.slo_violations;
        row.overrun.add(e2e - opt.delta_ns);
      } else {
        row.slack.add(opt.delta_ns - e2e);
      }
    }
  }

  report.items = report.drops = report.produced = 0;
  report.paid = report.free = 0;
  report.slo_samples = report.slo_violations = 0;
  report.joules = 0.0;
  for (PairAttribution& row : report.pairs) {
    row.joules = attributed_joules(opt, row.paid, row.items, row.batches);
    row.joules_per_item = ratio(row.joules, row.items);
    row.joules_per_paid_wake = ratio(row.joules, row.paid);
    row.items_per_paid_wake = ratio(static_cast<double>(row.items), row.paid);
    report.items += row.items;
    report.drops += row.drops;
    report.paid += row.paid;
    report.free += row.free;
    report.slo_samples += row.slo_samples;
    report.slo_violations += row.slo_violations;
    report.joules += row.joules;
  }
  report.produced = report.items + report.drops;
  report.joules_per_item = ratio(report.joules, report.items);
  report.joules_per_paid_wake = ratio(report.joules, report.paid);
  report.items_per_paid_wake = ratio(static_cast<double>(report.items), report.paid);
  for (CoreAttribution& row : report.cores) {
    row.joules = attributed_joules(opt, row.paid, row.items, row.batches);
    row.joules_per_item = ratio(row.joules, row.items);
    row.items_per_paid_wake = ratio(static_cast<double>(row.items), row.paid);
  }

  std::sort(report.pairs.begin(), report.pairs.end(),
            [](const PairAttribution& a, const PairAttribution& b) {
              return a.pair < b.pair;
            });
}

AttributionReport build_attribution(Session& session, const AttributionOptions& opt) {
  AttributionReport report;
  report.spans = fold_spans(session.events());

  const WakeupLedger& ledger = session.ledger();
  const auto wakeups = ledger.per_consumer();
  const auto work = ledger.per_consumer_work();
  const std::size_t n_pairs = std::max(wakeups.size(), work.size());
  for (std::size_t i = 0; i < n_pairs; ++i) {
    const WakeupLedger::Attribution w =
        i < wakeups.size() ? wakeups[i] : WakeupLedger::Attribution{};
    const WakeupLedger::Work k = i < work.size() ? work[i] : WakeupLedger::Work{};
    if (w.total() == 0 && k.items == 0 && k.batches == 0 && k.drops == 0) continue;
    PairAttribution& row = pair_row(report, static_cast<std::uint32_t>(i));
    row.paid = w.paid;
    row.free = w.free;
    row.items = k.items;
    row.batches = k.batches;
    row.drops = k.drops;
  }

  const auto core_wakeups = ledger.per_core();
  const auto core_work = ledger.per_core_work();
  const std::size_t n_cores = std::max(core_wakeups.size(), core_work.size());
  for (std::size_t i = 0; i < n_cores; ++i) {
    const WakeupLedger::Attribution w =
        i < core_wakeups.size() ? core_wakeups[i] : WakeupLedger::Attribution{};
    const WakeupLedger::Work k =
        i < core_work.size() ? core_work[i] : WakeupLedger::Work{};
    if (w.total() == 0 && k.items == 0 && k.batches == 0) continue;
    CoreAttribution row;
    row.core = static_cast<std::uint16_t>(i);
    row.paid = w.paid;
    row.free = w.free;
    row.items = k.items;
    row.batches = k.batches;
    report.cores.push_back(row);
  }

  finalize_attribution(report, opt);
  return report;
}

namespace {

void write_histogram_json(std::ostream& out, const StageHistogram& h) {
  out << "{\"count\":" << h.count << ",\"min_ns\":" << h.min_ns
      << ",\"max_ns\":" << h.max_ns << ",\"log2_bins\":[";
  std::size_t last = 0;
  for (std::size_t b = 0; b < h.bins.size(); ++b) {
    if (h.bins[b] != 0) last = b + 1;
  }
  for (std::size_t b = 0; b < last; ++b) {
    if (b > 0) out << ',';
    out << h.bins[b];
  }
  out << "]}";
}

}  // namespace

void write_slo_report(std::ostream& out, const AttributionReport& report) {
  out << "{\"delta_ns\":" << report.delta_ns;
  out << ",\"totals\":{\"items\":" << report.items << ",\"drops\":" << report.drops
      << ",\"produced\":" << report.produced << ",\"paid_wakes\":" << report.paid
      << ",\"free_wakes\":" << report.free << ",\"joules\":" << report.joules
      << ",\"joules_per_item\":" << report.joules_per_item
      << ",\"joules_per_paid_wake\":" << report.joules_per_paid_wake
      << ",\"items_per_paid_wake\":" << report.items_per_paid_wake
      << ",\"slo_samples\":" << report.slo_samples
      << ",\"slo_violations\":" << report.slo_violations << '}';

  if (report.payload_bytes > 0) {
    out << ",\"payload\":{\"records\":" << report.payload_records
        << ",\"bytes\":" << report.payload_bytes
        << ",\"bytes_per_s\":" << report.payload_bytes_per_s
        << ",\"joules_per_mb\":" << report.joules_per_mb << '}';
  }

  out << ",\"spans\":{\"stage_events\":" << report.spans.stage_events
      << ",\"sampled_items\":" << report.spans.items.size()
      << ",\"complete_items\":" << report.spans.complete_items
      << ",\"orphan_stages\":" << report.spans.orphan_stages
      << ",\"joined_wakes\":" << report.spans.joined_wakes
      << ",\"joined_paid_wakes\":" << report.spans.joined_paid_wakes;
  out << ",\"produce_to_enqueue\":";
  write_histogram_json(out, report.spans.produce_to_enqueue);
  out << ",\"enqueue_to_drain\":";
  write_histogram_json(out, report.spans.enqueue_to_drain);
  out << ",\"wake_to_drain\":";
  write_histogram_json(out, report.spans.wake_to_drain);
  out << ",\"drain_to_done\":";
  write_histogram_json(out, report.spans.drain_to_done);
  out << ",\"end_to_end\":";
  write_histogram_json(out, report.spans.end_to_end);
  out << '}';

  out << ",\"pairs\":[";
  for (std::size_t i = 0; i < report.pairs.size(); ++i) {
    const PairAttribution& row = report.pairs[i];
    if (i > 0) out << ',';
    out << "{\"pair\":" << row.pair << ",\"items\":" << row.items
        << ",\"batches\":" << row.batches << ",\"drops\":" << row.drops
        << ",\"paid_wakes\":" << row.paid << ",\"free_wakes\":" << row.free
        << ",\"joules\":" << row.joules
        << ",\"joules_per_item\":" << row.joules_per_item
        << ",\"joules_per_paid_wake\":" << row.joules_per_paid_wake
        << ",\"items_per_paid_wake\":" << row.items_per_paid_wake
        << ",\"slo\":{\"samples\":" << row.slo_samples
        << ",\"violations\":" << row.slo_violations << ",\"slack\":";
    write_histogram_json(out, row.slack);
    out << ",\"overrun\":";
    write_histogram_json(out, row.overrun);
    out << "}}";
  }
  out << "],\"cores\":[";
  for (std::size_t i = 0; i < report.cores.size(); ++i) {
    const CoreAttribution& row = report.cores[i];
    if (i > 0) out << ',';
    out << "{\"core\":" << row.core << ",\"items\":" << row.items
        << ",\"batches\":" << row.batches << ",\"paid_wakes\":" << row.paid
        << ",\"free_wakes\":" << row.free << ",\"joules\":" << row.joules
        << ",\"joules_per_item\":" << row.joules_per_item
        << ",\"items_per_paid_wake\":" << row.items_per_paid_wake << '}';
  }
  out << "]}";
}

bool write_slo_report(const std::string& path, const AttributionReport& report,
                      std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  write_slo_report(out, report);
  out << '\n';
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

}  // namespace pcpc::obs
