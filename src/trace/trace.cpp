#include "pcpc/trace/trace.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "pcpc/common/assert.hpp"

namespace pcpc::trace {

Trace::Trace(std::vector<SimTime> timestamps) : timestamps_(std::move(timestamps)) {
  if (!std::is_sorted(timestamps_.begin(), timestamps_.end())) {
    std::sort(timestamps_.begin(), timestamps_.end());
  }
  PCPC_ASSERT_MSG(timestamps_.empty() || timestamps_.front() >= 0,
                  "trace timestamps must be non-negative");
}

std::size_t Trace::count_in(SimTime from, SimTime to) const {
  if (to <= from) return 0;
  const auto lo = std::lower_bound(timestamps_.begin(), timestamps_.end(), from);
  const auto hi = std::lower_bound(timestamps_.begin(), timestamps_.end(), to);
  return static_cast<std::size_t>(hi - lo);
}

TraceStats Trace::stats(SimDuration window) const {
  PCPC_ASSERT(window > 0);
  TraceStats s;
  s.items = timestamps_.size();
  if (timestamps_.empty()) return s;
  s.duration = timestamps_.back() - timestamps_.front();
  if (s.duration > 0) {
    s.mean_rate_hz = static_cast<double>(s.items) / to_seconds(s.duration);
  }

  // Windowed peak / min rate.
  double peak = 0.0;
  double lowest = std::numeric_limits<double>::infinity();
  const SimTime start = timestamps_.front();
  const SimTime end = timestamps_.back();
  for (SimTime t = start; t < end; t += window) {
    const auto n = count_in(t, t + window);
    const double rate = static_cast<double>(n) / to_seconds(window);
    peak = std::max(peak, rate);
    lowest = std::min(lowest, rate);
  }
  s.peak_rate_hz = peak;
  s.min_rate_hz = std::isfinite(lowest) ? lowest : 0.0;

  // Interarrival coefficient of variation.
  if (timestamps_.size() >= 2) {
    double mean = 0.0;
    const auto gaps = timestamps_.size() - 1;
    for (std::size_t i = 1; i < timestamps_.size(); ++i)
      mean += static_cast<double>(timestamps_[i] - timestamps_[i - 1]);
    mean /= static_cast<double>(gaps);
    double var = 0.0;
    for (std::size_t i = 1; i < timestamps_.size(); ++i) {
      const double d = static_cast<double>(timestamps_[i] - timestamps_[i - 1]) - mean;
      var += d * d;
    }
    var /= static_cast<double>(gaps);
    if (mean > 0.0) s.interarrival_cv = std::sqrt(var) / mean;
  }
  return s;
}

Trace Trace::slice(SimTime from, SimTime to) const {
  std::vector<SimTime> out;
  const auto lo = std::lower_bound(timestamps_.begin(), timestamps_.end(), from);
  const auto hi = std::lower_bound(timestamps_.begin(), timestamps_.end(), to);
  out.reserve(static_cast<std::size_t>(hi - lo));
  for (auto it = lo; it != hi; ++it) out.push_back(*it - from);
  return Trace(std::move(out));
}

Trace Trace::phase_shift(SimDuration offset, SimDuration total_duration) const {
  PCPC_ASSERT(total_duration > 0);
  PCPC_ASSERT(offset >= 0);
  offset %= total_duration;
  if (offset == 0) return *this;
  std::vector<SimTime> out;
  out.reserve(timestamps_.size());
  // Items originally at t >= offset move to the front (t - offset); items
  // before the offset wrap to the tail (t - offset + total_duration).
  for (SimTime t : timestamps_) {
    if (t >= offset && t < total_duration) out.push_back(t - offset);
  }
  for (SimTime t : timestamps_) {
    if (t < offset) out.push_back(t - offset + total_duration);
  }
  return Trace(std::move(out));
}

Trace uniform_trace(std::size_t n, SimDuration gap, SimTime start) {
  PCPC_ASSERT(gap > 0);
  std::vector<SimTime> ts;
  ts.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    ts.push_back(start + static_cast<SimTime>(i) * gap);
  return Trace(std::move(ts));
}

Trace merge(std::span<const Trace> traces) {
  std::vector<SimTime> all;
  std::size_t total = 0;
  for (const auto& t : traces) total += t.size();
  all.reserve(total);
  for (const auto& t : traces)
    all.insert(all.end(), t.timestamps().begin(), t.timestamps().end());
  return Trace(std::move(all));
}

}  // namespace pcpc::trace
