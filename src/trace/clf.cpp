#include "pcpc/trace/clf.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <fstream>
#include <vector>

#include "pcpc/common/assert.hpp"

namespace pcpc::trace {

namespace {

constexpr std::array<std::string_view, 12> kMonths = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

std::optional<int> month_index(std::string_view name) {
  for (std::size_t i = 0; i < kMonths.size(); ++i) {
    if (kMonths[i] == name) return static_cast<int>(i);
  }
  return std::nullopt;
}

bool parse_int(std::string_view s, int& out) {
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

/// Days since the Unix epoch for a (civil) year/month/day; the classic
/// Howard Hinnant days_from_civil algorithm.
std::int64_t days_from_civil(int y, int m, int d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<std::int64_t>(era) * 146097 + static_cast<std::int64_t>(doe) -
         719468;
}

}  // namespace

std::optional<std::int64_t> parse_clf_timestamp(std::string_view field) {
  // dd/Mon/yyyy:HH:MM:SS +ZZZZ
  if (field.size() < 20) return std::nullopt;
  int day = 0, year = 0, hour = 0, minute = 0, second = 0;
  if (field.size() < 2 || !parse_int(field.substr(0, 2), day)) return std::nullopt;
  if (field[2] != '/') return std::nullopt;
  const auto month = month_index(field.substr(3, 3));
  if (!month.has_value()) return std::nullopt;
  if (field[6] != '/') return std::nullopt;
  if (!parse_int(field.substr(7, 4), year)) return std::nullopt;
  if (field[11] != ':') return std::nullopt;
  if (!parse_int(field.substr(12, 2), hour)) return std::nullopt;
  if (field[14] != ':') return std::nullopt;
  if (!parse_int(field.substr(15, 2), minute)) return std::nullopt;
  if (field[17] != ':') return std::nullopt;
  if (!parse_int(field.substr(18, 2), second)) return std::nullopt;
  if (day < 1 || day > 31 || hour > 23 || minute > 59 || second > 60) {
    return std::nullopt;
  }

  std::int64_t zone_offset_s = 0;
  if (field.size() >= 26 && field[20] == ' ') {
    const char sign = field[21];
    int zone_h = 0, zone_m = 0;
    if ((sign == '+' || sign == '-') && parse_int(field.substr(22, 2), zone_h) &&
        parse_int(field.substr(24, 2), zone_m)) {
      zone_offset_s = zone_h * 3600 + zone_m * 60;
      if (sign == '-') zone_offset_s = -zone_offset_s;
    } else {
      return std::nullopt;
    }
  }

  const std::int64_t days = days_from_civil(year, *month + 1, day);
  const std::int64_t local = days * 86400 + hour * 3600 + minute * 60 + second;
  return local - zone_offset_s;  // convert local-with-zone to UTC
}

std::optional<std::int64_t> parse_clf_line(std::string_view line) {
  const auto open = line.find('[');
  if (open == std::string_view::npos) return std::nullopt;
  const auto close = line.find(']', open);
  if (close == std::string_view::npos) return std::nullopt;
  return parse_clf_timestamp(line.substr(open + 1, close - open - 1));
}

ClfParseResult parse_clf(std::istream& in, double time_scale) {
  PCPC_ASSERT_MSG(time_scale > 0.0, "time scale must be positive");
  ClfParseResult result;
  std::vector<std::int64_t> epochs;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++result.lines;
    if (const auto epoch = parse_clf_line(line)) {
      epochs.push_back(*epoch);
      ++result.parsed;
    } else {
      ++result.malformed;
    }
  }
  if (epochs.empty()) return result;
  const std::int64_t base = *std::min_element(epochs.begin(), epochs.end());
  std::vector<SimTime> timestamps;
  timestamps.reserve(epochs.size());
  for (const std::int64_t e : epochs) {
    timestamps.push_back(
        from_seconds(static_cast<double>(e - base) * time_scale));
  }
  result.trace = Trace(std::move(timestamps));
  return result;
}

ClfParseResult parse_clf_file(const std::string& path, double time_scale, bool* ok) {
  std::ifstream in(path);
  if (!in.good()) {
    if (ok != nullptr) *ok = false;
    return {};
  }
  if (ok != nullptr) *ok = true;
  return parse_clf(in, time_scale);
}

}  // namespace pcpc::trace
