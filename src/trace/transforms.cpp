#include "pcpc/trace/transforms.hpp"

#include <algorithm>

#include "pcpc/common/assert.hpp"

namespace pcpc::trace {

Trace thin(const Trace& t, double keep, Rng& rng) {
  PCPC_ASSERT_MSG(keep >= 0.0 && keep <= 1.0, "keep probability must be in [0, 1]");
  std::vector<SimTime> out;
  out.reserve(static_cast<std::size_t>(static_cast<double>(t.size()) * keep) + 1);
  for (const SimTime ts : t.timestamps()) {
    if (rng.bernoulli(keep)) out.push_back(ts);
  }
  return Trace(std::move(out));
}

Trace time_scale(const Trace& t, double factor) {
  PCPC_ASSERT_MSG(factor > 0.0, "time scale must be positive");
  std::vector<SimTime> out;
  out.reserve(t.size());
  for (const SimTime ts : t.timestamps()) {
    out.push_back(static_cast<SimTime>(static_cast<double>(ts) * factor));
  }
  return Trace(std::move(out));
}

Trace jitter(const Trace& t, SimDuration magnitude, Rng& rng) {
  PCPC_ASSERT_MSG(magnitude >= 0, "jitter magnitude must be non-negative");
  std::vector<SimTime> out;
  out.reserve(t.size());
  for (const SimTime ts : t.timestamps()) {
    const auto delta = static_cast<SimDuration>(
        rng.uniform(-static_cast<double>(magnitude), static_cast<double>(magnitude)));
    out.push_back(std::max<SimTime>(0, ts + delta));
  }
  return Trace(std::move(out));
}

std::vector<Trace> split_round_robin(const Trace& t, std::size_t ways) {
  PCPC_ASSERT_MSG(ways > 0, "need at least one output");
  std::vector<std::vector<SimTime>> buckets(ways);
  std::size_t next = 0;
  for (const SimTime ts : t.timestamps()) {
    buckets[next].push_back(ts);
    next = (next + 1) % ways;
  }
  std::vector<Trace> out;
  out.reserve(ways);
  for (auto& bucket : buckets) out.emplace_back(std::move(bucket));
  return out;
}

std::vector<Trace> split_random(const Trace& t, std::size_t ways, Rng& rng) {
  PCPC_ASSERT_MSG(ways > 0, "need at least one output");
  std::vector<std::vector<SimTime>> buckets(ways);
  for (const SimTime ts : t.timestamps()) {
    buckets[rng.next_below(ways)].push_back(ts);
  }
  std::vector<Trace> out;
  out.reserve(ways);
  for (auto& bucket : buckets) out.emplace_back(std::move(bucket));
  return out;
}

Trace repeat(const Trace& t, SimDuration period, SimDuration total) {
  PCPC_ASSERT_MSG(period > 0, "repeat period must be positive");
  PCPC_ASSERT_MSG(total >= 0, "total duration must be non-negative");
  PCPC_ASSERT_MSG(t.empty() || t.end_time() < period,
                  "trace must fit inside one period");
  std::vector<SimTime> out;
  for (SimTime base = 0; base < total; base += period) {
    for (const SimTime ts : t.timestamps()) {
      const SimTime shifted = base + ts;
      if (shifted >= total) break;
      out.push_back(shifted);
    }
  }
  return Trace(std::move(out));
}

}  // namespace pcpc::trace
