#include "pcpc/trace/arrival_process.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "pcpc/common/assert.hpp"

namespace pcpc::trace {

ConstantRate::ConstantRate(double rate_hz) : rate_(rate_hz) {
  PCPC_ASSERT_MSG(rate_hz >= 0.0, "rate must be non-negative");
}

SinusoidRate::SinusoidRate(double base_hz, double amplitude_hz, SimDuration period,
                           double phase)
    : base_(base_hz), amplitude_(amplitude_hz), period_(period), phase_(phase) {
  PCPC_ASSERT(period > 0);
  PCPC_ASSERT(base_hz >= 0.0);
}

double SinusoidRate::rate_at(SimTime t) const {
  const double angle =
      2.0 * std::numbers::pi * to_seconds(t) / to_seconds(period_) + phase_;
  return std::max(0.0, base_ + amplitude_ * std::sin(angle));
}

BurstTrain::BurstTrain(std::vector<Burst> bursts) : bursts_(std::move(bursts)) {
  for (const auto& b : bursts_) {
    PCPC_ASSERT(b.duration > 0);
    PCPC_ASSERT(b.amplitude_hz >= 0.0);
  }
}

double BurstTrain::rate_at(SimTime t) const {
  double total = 0.0;
  for (const auto& b : bursts_) {
    if (t < b.start || t >= b.start + b.duration) continue;
    // Triangular profile: ramp up to the peak at mid-burst, then down.
    const double progress = static_cast<double>(t - b.start) / static_cast<double>(b.duration);
    const double shape = 1.0 - std::abs(2.0 * progress - 1.0);
    total += b.amplitude_hz * shape;
  }
  return total;
}

double BurstTrain::max_rate(SimDuration horizon) const {
  // Conservative: sum the peak amplitudes of every burst that can overlap
  // the horizon.  Overlapping bursts are rare in our generators, so this
  // stays a usable majorant.
  double total = 0.0;
  for (const auto& b : bursts_) {
    if (b.start >= horizon) continue;
    total += b.amplitude_hz;
  }
  return total;
}

CompositeRate::CompositeRate(std::vector<std::shared_ptr<const RateFunction>> parts)
    : parts_(std::move(parts)) {
  PCPC_ASSERT_MSG(!parts_.empty(), "composite rate requires at least one part");
}

double CompositeRate::rate_at(SimTime t) const {
  double total = 0.0;
  for (const auto& p : parts_) total += p->rate_at(t);
  return total;
}

double CompositeRate::max_rate(SimDuration horizon) const {
  double total = 0.0;
  for (const auto& p : parts_) total += p->max_rate(horizon);
  return total;
}

Trace sample_nhpp(const RateFunction& rate, SimDuration horizon, Rng& rng) {
  PCPC_ASSERT(horizon > 0);
  const double lambda_max = rate.max_rate(horizon);
  std::vector<SimTime> arrivals;
  if (lambda_max <= 0.0) return Trace(std::move(arrivals));
  arrivals.reserve(static_cast<std::size_t>(lambda_max * to_seconds(horizon) * 0.6) + 16);

  // Lewis-Shedler thinning: sample a homogeneous process at lambda_max and
  // accept each candidate with probability rate(t)/lambda_max.
  double t_seconds = 0.0;
  const double horizon_seconds = to_seconds(horizon);
  while (true) {
    t_seconds += rng.exponential(lambda_max);
    if (t_seconds >= horizon_seconds) break;
    const SimTime t = from_seconds(t_seconds);
    if (rng.next_double() * lambda_max < rate.rate_at(t)) arrivals.push_back(t);
  }
  return Trace(std::move(arrivals));
}

Trace sample_mmpp(const MmppParams& params, SimDuration horizon, Rng& rng) {
  PCPC_ASSERT(horizon > 0);
  PCPC_ASSERT(params.low_rate_hz >= 0.0 && params.high_rate_hz >= 0.0);
  PCPC_ASSERT(params.mean_low_dwell > 0 && params.mean_high_dwell > 0);

  std::vector<SimTime> arrivals;
  bool high = false;
  SimTime now = 0;
  while (now < horizon) {
    const SimDuration mean_dwell = high ? params.mean_high_dwell : params.mean_low_dwell;
    const double dwell_seconds = rng.exponential(1.0 / to_seconds(mean_dwell));
    const SimTime dwell_end = std::min<SimTime>(horizon, now + from_seconds(dwell_seconds));
    const double lambda = high ? params.high_rate_hz : params.low_rate_hz;
    if (lambda > 0.0) {
      double t_seconds = to_seconds(now);
      const double end_seconds = to_seconds(dwell_end);
      while (true) {
        t_seconds += rng.exponential(lambda);
        if (t_seconds >= end_seconds) break;
        arrivals.push_back(from_seconds(t_seconds));
      }
    }
    now = dwell_end;
    high = !high;
  }
  return Trace(std::move(arrivals));
}

Trace sample_pareto_on_off(const ParetoOnOffParams& params, SimDuration horizon,
                           Rng& rng) {
  PCPC_ASSERT(horizon > 0);
  PCPC_ASSERT_MSG(params.shape > 1.0, "Pareto shape must exceed 1 for a finite mean");
  PCPC_ASSERT(params.min_on > 0 && params.min_off > 0);
  PCPC_ASSERT(params.on_rate_hz >= 0.0);

  const auto pareto = [&rng, &params](SimDuration scale) {
    // Inverse-CDF sampling: X = scale / U^{1/α}, truncated.
    const double u = rng.next_double_open();
    const double x = static_cast<double>(scale) / std::pow(u, 1.0 / params.shape);
    return std::min<SimDuration>(params.max_period, static_cast<SimDuration>(x));
  };

  std::vector<SimTime> arrivals;
  SimTime now = 0;
  bool on = rng.bernoulli(0.5);
  while (now < horizon) {
    const SimDuration dwell = pareto(on ? params.min_on : params.min_off);
    const SimTime dwell_end = std::min<SimTime>(horizon, now + dwell);
    if (on && params.on_rate_hz > 0.0) {
      double t_seconds = to_seconds(now);
      const double end_seconds = to_seconds(dwell_end);
      while (true) {
        t_seconds += rng.exponential(params.on_rate_hz);
        if (t_seconds >= end_seconds) break;
        arrivals.push_back(from_seconds(t_seconds));
      }
    }
    now = dwell_end;
    on = !on;
  }
  return Trace(std::move(arrivals));
}

}  // namespace pcpc::trace
