#include "pcpc/trace/trace_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

namespace pcpc::trace {

namespace {

constexpr std::uint32_t kMagic = 0x50435054;  // "PCPT"
constexpr std::uint32_t kVersion = 1;

void set_ok(bool* ok, bool value) {
  if (ok != nullptr) *ok = value;
}

}  // namespace

bool save_binary(const Trace& t, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) return false;
  const std::uint32_t magic = kMagic;
  const std::uint32_t version = kVersion;
  const std::uint64_t count = t.size();
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (SimTime ts : t.timestamps()) {
    const auto v = static_cast<std::int64_t>(ts);
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  return out.good();
}

Trace load_binary(const std::string& path, bool* ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    set_ok(ok, false);
    return Trace{};
  }
  std::uint32_t magic = 0, version = 0;
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in.good() || magic != kMagic || version != kVersion) {
    set_ok(ok, false);
    return Trace{};
  }
  std::vector<SimTime> ts;
  ts.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::int64_t v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof(v));
    if (!in.good()) {
      set_ok(ok, false);
      return Trace{};
    }
    ts.push_back(v);
  }
  set_ok(ok, true);
  return Trace(std::move(ts));
}

bool save_csv(const Trace& t, const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) return false;
  out << "timestamp_ns\n";
  for (SimTime ts : t.timestamps()) out << ts << '\n';
  return out.good();
}

Trace load_csv(const std::string& path, bool* ok) {
  std::ifstream in(path);
  if (!in.good()) {
    set_ok(ok, false);
    return Trace{};
  }
  std::vector<SimTime> ts;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (first) {
      first = false;
      // Skip a non-numeric header line.
      if (line.find_first_not_of("0123456789-+ \t\r") != std::string::npos) continue;
    }
    try {
      ts.push_back(std::stoll(line));
    } catch (...) {
      set_ok(ok, false);
      return Trace{};
    }
  }
  set_ok(ok, true);
  return Trace(std::move(ts));
}

}  // namespace pcpc::trace
