#include "pcpc/trace/webserver_log.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "pcpc/common/assert.hpp"
#include "pcpc/trace/arrival_process.hpp"

namespace pcpc::trace {

Trace make_web_workload(const WebWorkloadParams& params) {
  PCPC_ASSERT(params.duration > 0);
  PCPC_ASSERT(params.base_rate_hz > 0.0);
  Rng rng(params.seed);

  std::vector<std::shared_ptr<const RateFunction>> parts;

  // Base load with the dominant diurnal swing.  The base keeps a floor of
  // (1 - diurnal_fraction) * base so the server is never fully quiet,
  // matching the Google observation the paper cites (servers operate at
  // 10-50% utilization, rarely idle).
  parts.push_back(std::make_shared<SinusoidRate>(
      params.base_rate_hz, params.diurnal_fraction * params.base_rate_hz,
      params.diurnal_period, rng.uniform(0.0, 6.28)));

  // Slower secondary modulation so the rate never repeats exactly cycle to
  // cycle ("non-linear" in the paper's wording).
  parts.push_back(std::make_shared<SinusoidRate>(
      params.secondary_fraction * params.base_rate_hz / 2.0,
      params.secondary_fraction * params.base_rate_hz / 2.0, params.secondary_period,
      rng.uniform(0.0, 6.28)));

  // Flash crowds: Poisson-placed bursts with exponential durations and
  // lognormal amplitude spread.
  std::vector<BurstTrain::Burst> bursts;
  const double burst_rate_hz = params.bursts_per_minute / 60.0;
  if (burst_rate_hz > 0.0) {
    double t_seconds = 0.0;
    const double horizon_seconds = to_seconds(params.duration);
    while (true) {
      t_seconds += rng.exponential(burst_rate_hz);
      if (t_seconds >= horizon_seconds) break;
      BurstTrain::Burst b;
      b.start = from_seconds(t_seconds);
      b.duration = std::max<SimDuration>(
          milliseconds(50),
          from_seconds(rng.exponential(1.0 / to_seconds(params.mean_burst_duration))));
      b.amplitude_hz =
          params.burst_amplitude_factor * params.base_rate_hz * rng.lognormal(0.0, 0.35);
      bursts.push_back(b);
    }
  }
  if (!bursts.empty()) parts.push_back(std::make_shared<BurstTrain>(std::move(bursts)));

  const CompositeRate rate(std::move(parts));
  return sample_nhpp(rate, params.duration, rng);
}

std::vector<Trace> make_shifted_workloads(const WebWorkloadParams& params,
                                          std::size_t producers) {
  PCPC_ASSERT_MSG(producers > 0, "need at least one producer");
  const Trace base = make_web_workload(params);
  std::vector<Trace> traces;
  traces.reserve(producers);
  for (std::size_t i = 0; i < producers; ++i) {
    const SimDuration offset =
        static_cast<SimDuration>(static_cast<double>(params.duration) *
                                 static_cast<double>(i) / static_cast<double>(producers));
    traces.push_back(base.phase_shift(offset, params.duration));
  }
  return traces;
}

}  // namespace pcpc::trace
