#include "pcpc/impls/run_result.hpp"

namespace pcpc::impls {

double RunResult::wakeups_per_s() const {
  double total = 0.0;
  for (const auto& t : timelines) total += t.wakeups_per_s();
  return total;
}

double RunResult::usage_ms_per_s() const {
  double total = 0.0;
  for (const auto& t : timelines) total += t.usage_ms_per_s();
  return total * usage_scale;
}

double RunResult::extra_power_w(const power::EnergyLedger& ledger) const {
  return ledger.extra_power_watts(timelines, active_power_scale) +
         ledger.transport_power_watts(items, duration);
}

}  // namespace pcpc::impls
