#include "pcpc/impls/baselines.hpp"

#include <deque>
#include <memory>
#include <vector>

#include "pcpc/common/assert.hpp"
#include "pcpc/common/rng.hpp"
#include "pcpc/core/sim_core.hpp"
#include "pcpc/obs/obs.hpp"
#include "pcpc/sim/replay.hpp"
#include "pcpc/sim/simulator.hpp"

namespace pcpc::impls {

namespace {

using core::SimCore;

/// Per-pair state shared by the event-driven baselines.  The buffer is a
/// deque with explicit capacity accounting: pushes beyond B count as
/// overflows but the item is still enqueued (the producer blocks and
/// hands the item over at the next drain — no data is ever dropped, so
/// every implementation consumes the identical item set).
struct Pair {
  std::size_t index = 0;
  std::size_t core = 0;
  std::deque<SimTime> buffer;
  SimTime busy_until = 0;
  bool continuation_pending = false;
  sim::EventId timer_event = 0;
};

/// Everything one baseline run needs; built by `make_rig`.
struct Rig {
  sim::Simulator simulator;
  std::vector<std::unique_ptr<SimCore>> cores;
  std::vector<Pair> pairs;
  RunResult result;
  power::ServiceModel service;

  SimCore& core_of(const Pair& pair) { return *cores[pair.core]; }

  /// Drains a pair's buffer at `now`, charging the core `overhead` plus
  /// the batch's service time.  Returns the batch size.
  std::size_t drain(Pair& pair, SimTime now, SimDuration overhead) {
    std::size_t batch = 0;
    while (!pair.buffer.empty()) {
      result.latency_s.add(to_seconds(now - pair.buffer.front()));
      pair.buffer.pop_front();
      ++batch;
    }
    const SimDuration busy = overhead + service.batch_time(batch);
    pair.busy_until = now + busy;
    const bool paid = core_of(pair).run_for(busy);
    obs::note_wakeup(static_cast<std::uint16_t>(pair.core),
                     static_cast<std::uint32_t>(pair.index), obs::kNoSlot, paid,
                     /*scheduled=*/false, now);
    obs::note_slot_batch(static_cast<std::uint16_t>(pair.core),
                         static_cast<std::uint32_t>(pair.index), obs::kNoSlot, batch,
                         now, busy);
    result.items += batch;
    result.batch_sizes.add(static_cast<double>(batch));
    ++result.invocations;
    return batch;
  }

  /// Finalizes cores and stamps the shared result fields.
  RunResult finish(SimTime horizon, std::string name) {
    simulator.run();  // let pending core-sleep events close busy windows
    const SimTime end = std::max(horizon, simulator.now());
    for (auto& core : cores) {
      core->finalize(end);
      result.paid_wakeups += core->wakeups();
      result.timelines.push_back(core->take_timeline());
    }
    result.duration = end;
    result.name = std::move(name);
    return std::move(result);
  }
};

std::unique_ptr<Rig> make_rig(std::span<const trace::Trace> traces,
                              const BaselineParams& params) {
  PCPC_ASSERT_MSG(!traces.empty(), "need at least one pair");
  PCPC_ASSERT_MSG(params.cores > 0, "need at least one core");
  auto rig = std::make_unique<Rig>();
  rig->service = params.service;
  const std::size_t cores = std::min(params.cores, traces.size());
  for (std::size_t c = 0; c < cores; ++c) {
    rig->cores.push_back(std::make_unique<SimCore>(rig->simulator));
  }
  rig->pairs.resize(traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    rig->pairs[i].index = i;
    rig->pairs[i].core = i % cores;
  }
  return rig;
}

/// Spin-based implementations (BW / Yield) share everything except the
/// DVFS and usage discounts.
RunResult run_spinning(std::span<const trace::Trace> traces, SimDuration horizon,
                       const BaselineParams& params, std::string name,
                       double power_scale, double usage_fraction) {
  auto rig = make_rig(traces, params);
  // The spinning consumer occupies its core for the entire run; items are
  // consumed the moment they arrive.
  for (auto& core : rig->cores) core->run_for(horizon);
  for (std::size_t i = 0; i < traces.size(); ++i) {
    for (const SimTime t : traces[i].timestamps()) {
      if (t >= horizon) break;
      ++rig->result.items;
      rig->result.latency_s.add(to_seconds(params.service.per_item));
      rig->result.batch_sizes.add(1.0);
      ++rig->result.invocations;
    }
  }
  rig->result.active_power_scale = power_scale;
  rig->result.usage_scale = usage_fraction;
  rig->simulator.run_until(horizon);
  return rig->finish(horizon, std::move(name));
}

/// The coalescing drain trigger shared by Mutex/Sem (trigger: any item)
/// and BP (trigger: buffer full).
void arrival_with_trigger(Rig& rig, Pair& pair, SimTime now, std::size_t capacity,
                          SimDuration overhead, bool trigger_on_any_item,
                          bool count_fill_as_overflow) {
  pair.buffer.push_back(now);
  const bool full = pair.buffer.size() >= capacity;
  if (full && count_fill_as_overflow) ++rig.result.overflows;
  const bool trigger = trigger_on_any_item || full;
  if (!trigger) return;
  if (now >= pair.busy_until) {
    rig.drain(pair, now, overhead);
    return;
  }
  // Consumer still processing: the signal coalesces; schedule one
  // continuation at the end of the current busy window.
  if (!pair.continuation_pending) {
    pair.continuation_pending = true;
    Pair* p = &pair;
    Rig* r = &rig;
    rig.simulator.at(pair.busy_until, [r, p, capacity, overhead, trigger_on_any_item,
                                       count_fill_as_overflow](SimTime t) {
      p->continuation_pending = false;
      if (p->buffer.empty()) return;
      if (trigger_on_any_item || p->buffer.size() >= capacity) {
        r->drain(*p, t, overhead);
      }
    });
  }
}

}  // namespace

RunResult run_busy_wait(std::span<const trace::Trace> traces, SimDuration horizon,
                        const BaselineParams& params) {
  return run_spinning(traces, horizon, params, "BW", 1.0, 1.0);
}

RunResult run_yield(std::span<const trace::Trace> traces, SimDuration horizon,
                    const BaselineParams& params) {
  return run_spinning(traces, horizon, params, "Yield", params.yield_power_scale,
                      params.yield_usage_fraction);
}

RunResult run_signaled(ImplKind kind, std::span<const trace::Trace> traces,
                       SimDuration horizon, const BaselineParams& params) {
  PCPC_ASSERT(kind == ImplKind::Mutex || kind == ImplKind::Semaphore);
  const SimDuration overhead =
      kind == ImplKind::Mutex ? params.mutex_overhead : params.sem_overhead;
  auto rig = make_rig(traces, params);
  for (std::size_t i = 0; i < traces.size(); ++i) {
    Pair* pair = &rig->pairs[i];
    Rig* r = rig.get();
    const std::size_t capacity = params.buffer_capacity;
    sim::replay(rig->simulator, traces[i].timestamps(), horizon,
                [r, pair, capacity, overhead](SimTime t) {
                  arrival_with_trigger(*r, *pair, t, capacity, overhead,
                                       /*trigger_on_any_item=*/true,
                                       /*count_fill_as_overflow=*/true);
                });
  }
  rig->simulator.run_until(horizon);
  for (auto& pair : rig->pairs) {
    if (!pair.buffer.empty()) rig->drain(pair, horizon, overhead);
  }
  return rig->finish(horizon, impl_name(kind));
}

RunResult run_batch(std::span<const trace::Trace> traces, SimDuration horizon,
                    const BaselineParams& params) {
  auto rig = make_rig(traces, params);
  for (std::size_t i = 0; i < traces.size(); ++i) {
    Pair* pair = &rig->pairs[i];
    Rig* r = rig.get();
    const std::size_t capacity = params.buffer_capacity;
    const SimDuration overhead = params.batch_overhead;
    sim::replay(rig->simulator, traces[i].timestamps(), horizon,
                [r, pair, capacity, overhead](SimTime t) {
                  arrival_with_trigger(*r, *pair, t, capacity, overhead,
                                       /*trigger_on_any_item=*/false,
                                       /*count_fill_as_overflow=*/true);
                });
  }
  rig->simulator.run_until(horizon);
  for (auto& pair : rig->pairs) {
    if (!pair.buffer.empty()) rig->drain(pair, horizon, params.batch_overhead);
  }
  return rig->finish(horizon, "BP");
}

RunResult run_periodic(ImplKind kind, std::span<const trace::Trace> traces,
                       SimDuration horizon, const BaselineParams& params) {
  PCPC_ASSERT(kind == ImplKind::PeriodicBatch || kind == ImplKind::SignalPeriodicBatch ||
              kind == ImplKind::CoalescedPeriodicBatch);
  const double sigma = kind == ImplKind::PeriodicBatch ? params.nanosleep_jitter_sigma
                                                       : params.sigalrm_jitter_sigma;
  // Independent threads start at arbitrary phases; kernel coalescing
  // (CPBP) snaps every pair onto the same k·T grid instead.
  const bool aligned = kind == ImplKind::CoalescedPeriodicBatch;
  auto rig = make_rig(traces, params);
  auto rng = std::make_shared<Rng>(params.seed);

  // Per-pair periodic timer chain with *absolute* deadlines: the k-th
  // fire targets k·T, delivered late by a non-accumulating oversleep
  // (nanosleep never returns early; the factor is clamped at 1).  Late
  // delivery does not skip fires — it widens the effective drain
  // interval, which is exactly how the paper's PBP converts sleep()
  // jitter into extra buffer-overflow wakeups while SPBP's accurate
  // SIGALRM does not (Section III-C3).
  struct TimerChain {
    Rig* rig;
    Pair* pair;
    std::shared_ptr<Rng> rng;
    SimDuration period;
    double sigma;
    SimDuration overhead;
    SimTime horizon;
    mutable SimTime nominal = 0;    // the k·T schedule
    mutable SimTime last_fire = 0;  // actual delivery times stay monotone

    void arm() const {
      nominal += period;
      const double factor = std::max(1.0, rng->lognormal(0.0, sigma));
      const auto oversleep = static_cast<SimDuration>(
          static_cast<double>(period) * (factor - 1.0));
      const SimTime next = std::max(nominal + oversleep, last_fire + 1);
      if (next >= horizon) return;
      auto self = *this;
      rig->simulator.at(next, [self](SimTime t) { self.fire(t); });
    }

    void fire(SimTime t) const {
      last_fire = t;
      ++rig->result.scheduled_wakeups;
      // The timer wakes the consumer whether or not items are buffered —
      // an empty drain still costs the per-invocation overhead.
      rig->drain(*pair, t, overhead);
      arm();
    }
  };

  for (std::size_t i = 0; i < traces.size(); ++i) {
    Pair* pair = &rig->pairs[i];
    Rig* r = rig.get();
    const std::size_t capacity = params.buffer_capacity;
    const SimDuration overhead = params.batch_overhead;
    TimerChain chain{r, pair, rng, params.period, sigma, overhead, horizon};
    if (!aligned) {
      chain.nominal = -static_cast<SimDuration>(
          (i * static_cast<std::size_t>(params.period)) / traces.size());
    }
    chain.arm();
    sim::replay(rig->simulator, traces[i].timestamps(), horizon,
                [r, pair, capacity, overhead](SimTime t) {
                  // Overflow before the period expires: immediate
                  // unscheduled drain (the "logic to handle the overflow"
                  // the paper says PBP needs).
                  arrival_with_trigger(*r, *pair, t, capacity, overhead,
                                       /*trigger_on_any_item=*/false,
                                       /*count_fill_as_overflow=*/true);
                });
  }
  rig->simulator.run_until(horizon);
  for (auto& pair : rig->pairs) {
    if (!pair.buffer.empty()) rig->drain(pair, horizon, params.batch_overhead);
  }
  return rig->finish(horizon, impl_name(kind));
}

}  // namespace pcpc::impls
