#include "pcpc/impls/runner.hpp"

#include "pcpc/common/assert.hpp"
#include "pcpc/core/pbpl_system.hpp"

namespace pcpc::impls {

std::string impl_name(ImplKind kind) {
  switch (kind) {
    case ImplKind::BusyWait: return "BW";
    case ImplKind::Yield: return "Yield";
    case ImplKind::Mutex: return "Mutex";
    case ImplKind::Semaphore: return "Sem";
    case ImplKind::Batch: return "BP";
    case ImplKind::PeriodicBatch: return "PBP";
    case ImplKind::SignalPeriodicBatch: return "SPBP";
    case ImplKind::CoalescedPeriodicBatch: return "CPBP";
    case ImplKind::Pbpl: return "PBPL";
  }
  return "?";
}

core::PbplConfig ExperimentSetup::synchronized_pbpl() const {
  core::PbplConfig config = pbpl;
  config.cores = baseline.cores;
  config.service = baseline.service;
  config.base_buffer = baseline.buffer_capacity;
  return config;
}

RunResult to_run_result(core::PbplResult&& pbpl, SimDuration horizon) {
  RunResult result;
  result.name = "PBPL";
  result.timelines = std::move(pbpl.timelines);
  result.duration = horizon;
  result.items = pbpl.items;
  result.invocations = pbpl.invocations;
  result.overflows = pbpl.overflow_wakeups;
  result.scheduled_wakeups = pbpl.scheduled_wakeups;
  result.paid_wakeups = pbpl.paid_wakeups;
  result.latched_reservations = pbpl.latched_reservations;
  result.reservations = pbpl.reservations;
  result.emergency_borrows = pbpl.emergency_borrows;
  result.batch_sizes = pbpl.batch_sizes;
  result.latency_s = pbpl.latency_s;
  result.buffer_capacity = pbpl.buffer_capacity;
  return result;
}

RunResult run_implementation(ImplKind kind, std::span<const trace::Trace> traces,
                             SimDuration horizon, const ExperimentSetup& setup) {
  switch (kind) {
    case ImplKind::BusyWait:
      return run_busy_wait(traces, horizon, setup.baseline);
    case ImplKind::Yield:
      return run_yield(traces, horizon, setup.baseline);
    case ImplKind::Mutex:
    case ImplKind::Semaphore:
      return run_signaled(kind, traces, horizon, setup.baseline);
    case ImplKind::Batch:
      return run_batch(traces, horizon, setup.baseline);
    case ImplKind::PeriodicBatch:
    case ImplKind::SignalPeriodicBatch:
    case ImplKind::CoalescedPeriodicBatch:
      return run_periodic(kind, traces, horizon, setup.baseline);
    case ImplKind::Pbpl:
      return to_run_result(core::run_pbpl(traces, horizon, setup.synchronized_pbpl()),
                           horizon);
  }
  PCPC_ASSERT_MSG(false, "unknown implementation kind");
  return {};
}

}  // namespace pcpc::impls
