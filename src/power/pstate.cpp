#include "pcpc/power/pstate.hpp"

#include <algorithm>

#include "pcpc/common/assert.hpp"
#include "pcpc/power/cstate.hpp"

namespace pcpc::power {

PStateModel::PStateModel(std::vector<PState> states, double switched_capacitance,
                         double leakage_w)
    : states_(std::move(states)), capacitance_f_(switched_capacitance),
      leakage_w_(leakage_w) {
  PCPC_ASSERT_MSG(!states_.empty(), "P-state table must be non-empty");
  PCPC_ASSERT(switched_capacitance > 0.0);
  PCPC_ASSERT(leakage_w >= 0.0);
  for (std::size_t i = 0; i < states_.size(); ++i) {
    PCPC_ASSERT_MSG(states_[i].frequency_hz > 0.0, "frequencies must be positive");
    PCPC_ASSERT_MSG(states_[i].voltage_v > 0.0, "voltages must be positive");
    if (i > 0) {
      PCPC_ASSERT_MSG(states_[i].frequency_hz > states_[i - 1].frequency_hz,
                      "states must be sorted by ascending frequency");
      PCPC_ASSERT_MSG(states_[i].voltage_v >= states_[i - 1].voltage_v,
                      "higher frequency cannot need lower voltage");
    }
  }
}

PStateModel PStateModel::arndale_like() {
  // Frequency/voltage pairs in the published Exynos-5250 OPP range; C is
  // back-solved so the top state draws ≈1.1 W, matching the two-state
  // model's active power (1.1 = C·1.3²·1.6e9 + 0.12 → C ≈ 0.36 nF).
  return PStateModel(
      {
          PState{"600MHz", 600e6, 0.95},
          PState{"800MHz", 800e6, 1.00},
          PState{"1.0GHz", 1.0e9, 1.05},
          PState{"1.3GHz", 1.3e9, 1.15},
          PState{"1.6GHz", 1.6e9, 1.30},
      },
      /*switched_capacitance=*/0.3625e-9, /*leakage_w=*/0.12);
}

double PStateModel::active_power_w(std::size_t i) const {
  const PState& s = states_.at(i);
  return capacitance_f_ * s.voltage_v * s.voltage_v * s.frequency_hz + leakage_w_;
}

SimDuration PStateModel::execution_time(double work_cycles, std::size_t i) const {
  PCPC_ASSERT(work_cycles >= 0.0);
  return from_seconds(work_cycles / states_.at(i).frequency_hz);
}

double PStateModel::execution_energy_j(double work_cycles, std::size_t i) const {
  return active_power_w(i) * to_seconds(execution_time(work_cycles, i));
}

std::size_t PStateModel::slowest_meeting(double work_cycles, SimDuration deadline) const {
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (execution_time(work_cycles, i) <= deadline) return i;
  }
  return fastest();
}

RaceToIdleOutcome evaluate_window(const PStateModel& pstates, const CStateModel& idle,
                                  double work_cycles, SimDuration window,
                                  double wakeup_j, std::size_t pstate) {
  RaceToIdleOutcome out;
  out.pstate = pstate;
  out.busy = pstates.execution_time(work_cycles, pstate);
  out.idle = std::max<SimDuration>(0, window - out.busy);
  out.energy_j = pstates.execution_energy_j(work_cycles, pstate) +
                 idle.idle_energy(out.idle) + (out.idle > 0 ? wakeup_j : 0.0);
  return out;
}

RaceToIdleOutcome best_pstate(const PStateModel& pstates, const CStateModel& idle,
                              double work_cycles, SimDuration window, double wakeup_j) {
  RaceToIdleOutcome best;
  bool first = true;
  for (std::size_t i = 0; i < pstates.size(); ++i) {
    const RaceToIdleOutcome candidate =
        evaluate_window(pstates, idle, work_cycles, window, wakeup_j, i);
    if (candidate.busy > window) continue;  // misses the window
    if (first || candidate.energy_j < best.energy_j) {
      best = candidate;
      first = false;
    }
  }
  if (first) {
    // Nothing fits: run flat out.
    best = evaluate_window(pstates, idle, work_cycles, window, wakeup_j,
                           pstates.fastest());
  }
  return best;
}

}  // namespace pcpc::power
