#include "pcpc/power/cstate.hpp"

#include <algorithm>

#include "pcpc/common/assert.hpp"

namespace pcpc::power {

CStateModel::CStateModel(std::vector<CState> states) : states_(std::move(states)) {
  PCPC_ASSERT_MSG(!states_.empty(), "C-state ladder must have at least one state");
  PCPC_ASSERT_MSG(states_.front().target_residency == 0,
                  "shallowest state must be immediately available");
  for (std::size_t i = 1; i < states_.size(); ++i) {
    PCPC_ASSERT_MSG(states_[i].power_w <= states_[i - 1].power_w,
                    "deeper states must not draw more power");
    PCPC_ASSERT_MSG(states_[i].target_residency >= states_[i - 1].target_residency,
                    "deeper states must require longer residency");
  }
}

CStateModel CStateModel::two_state(double idle_power_w) {
  return CStateModel({CState{"idle", idle_power_w, 0, 0}});
}

CStateModel CStateModel::arndale_like() {
  // Magnitudes patterned after a Cortex-A15 class mobile SoC: per-core
  // power while idle in each state, the residency needed to be worth
  // entering, and the exit latency.  Absolute values matter only in that
  // they keep figure outputs in the paper's milliwatt range.
  return CStateModel({
      CState{"C1-wfi", 0.180, nanoseconds(0), microseconds(1)},
      CState{"C2-retention", 0.090, microseconds(80), microseconds(30)},
      CState{"C3-core-off", 0.035, microseconds(600), microseconds(150)},
      CState{"C4-cluster-off", 0.012, milliseconds(4), microseconds(700)},
  });
}

double CStateModel::idle_energy(SimDuration gap) const {
  if (gap <= 0) return 0.0;
  // The core enters state i once the elapsed gap reaches that state's
  // target residency, producing a piecewise-constant, non-increasing power
  // profile over the gap.
  double joules = 0.0;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    const SimDuration enter = states_[i].target_residency;
    if (enter >= gap) break;
    const SimDuration leave =
        (i + 1 < states_.size()) ? std::min(gap, states_[i + 1].target_residency) : gap;
    if (leave > enter) joules += states_[i].power_w * to_seconds(leave - enter);
  }
  return joules;
}

double CStateModel::idle_power(SimDuration gap) const {
  if (gap <= 0) return states_.front().power_w;
  return idle_energy(gap) / to_seconds(gap);
}

const CState& CStateModel::deepest_reached(SimDuration gap) const {
  const CState* deepest = &states_.front();
  for (const auto& s : states_) {
    if (s.target_residency < gap || (s.target_residency == 0 && gap >= 0)) deepest = &s;
  }
  return *deepest;
}

}  // namespace pcpc::power
