#include "pcpc/power/energy_ledger.hpp"

#include "pcpc/common/assert.hpp"

namespace pcpc::power {

PowerModelParams PowerModelParams::simplified(double active_w, double idle_w,
                                              double wakeup_j) {
  PowerModelParams p;
  p.active_power_w = active_w;
  p.wakeup_energy_j = wakeup_j;
  p.cstates = CStateModel::two_state(idle_w);
  return p;
}

EnergyLedger::EnergyLedger(PowerModelParams params) : params_(std::move(params)) {
  PCPC_ASSERT(params_.active_power_w > 0.0);
  PCPC_ASSERT(params_.wakeup_energy_j >= 0.0);
}

double EnergyLedger::energy_joules(const CoreTimeline& timeline, double active_scale) const {
  PCPC_ASSERT_MSG(timeline.finalized(), "energy requires a finalized timeline");
  PCPC_ASSERT(active_scale > 0.0);
  double joules = 0.0;
  for (const auto& interval : timeline.intervals()) {
    if (interval.state == CoreState::Active) {
      joules += params_.active_power_w * active_scale * to_seconds(interval.length());
    } else {
      joules += params_.cstates.idle_energy(interval.length());
    }
  }
  joules += static_cast<double>(timeline.wakeups()) * params_.wakeup_energy_j;
  return joules;
}

double EnergyLedger::baseline_joules(const CoreTimeline& timeline) const {
  PCPC_ASSERT_MSG(timeline.finalized(), "baseline requires a finalized timeline");
  return params_.cstates.idle_energy(timeline.duration());
}

double EnergyLedger::extra_power_watts(const CoreTimeline& timeline,
                                       double active_scale) const {
  const SimDuration span = timeline.duration();
  if (span <= 0) return 0.0;
  return (energy_joules(timeline, active_scale) - baseline_joules(timeline)) /
         to_seconds(span);
}

double EnergyLedger::extra_power_watts(std::span<const CoreTimeline> timelines,
                                       double active_scale) const {
  double total = 0.0;
  for (const auto& t : timelines) total += extra_power_watts(t, active_scale);
  return total;
}

double EnergyLedger::transport_power_watts(std::uint64_t items, SimDuration span) const {
  if (span <= 0) return 0.0;
  return static_cast<double>(items) * params_.item_transport_energy_j / to_seconds(span);
}

double EnergyLedger::item_energy_j(const ServiceModel& service, std::size_t items) const {
  return params_.active_power_w * to_seconds(service.batch_time(items)) -
         params_.active_power_w * to_seconds(service.per_invocation);
}

}  // namespace pcpc::power
