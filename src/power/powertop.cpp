#include "pcpc/power/powertop.hpp"

#include "pcpc/common/assert.hpp"
#include "pcpc/common/table.hpp"

namespace pcpc::power {

PowerTopRow powertop_row(std::string name, std::span<const CoreTimeline> timelines,
                         const EnergyLedger& ledger) {
  PCPC_ASSERT_MSG(!timelines.empty(), "powertop row requires at least one core");
  PowerTopRow row;
  row.name = std::move(name);
  for (const auto& t : timelines) {
    row.wakeups_per_s += t.wakeups_per_s();
    row.usage_ms_per_s += t.usage_ms_per_s();
  }
  row.extra_power_w = ledger.extra_power_watts(timelines);
  return row;
}

std::string render_report(std::span<const PowerTopRow> rows, const std::string& title) {
  Table table({"implementation", "wakeups/s", "usage (ms/s)", "power (mW)"});
  table.set_title(title);
  for (const auto& row : rows) {
    table.add(row.name, format_double(row.wakeups_per_s, 1),
              format_double(row.usage_ms_per_s, 1),
              format_double(row.extra_power_w * 1000.0, 2));
  }
  return table.to_string();
}

}  // namespace pcpc::power
