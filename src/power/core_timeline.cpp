#include "pcpc/power/core_timeline.hpp"

#include "pcpc/common/assert.hpp"

namespace pcpc::power {

CoreTimeline::CoreTimeline(SimTime start) : start_(start), last_transition_(start) {}

bool CoreTimeline::wake(SimTime t) {
  PCPC_ASSERT_MSG(!finalized_, "timeline already finalized");
  PCPC_ASSERT_MSG(t >= last_transition_, "transitions must be monotone");
  if (state_ == CoreState::Active) return false;
  close_interval(t);
  state_ = CoreState::Active;
  ++wakeups_;
  return true;
}

bool CoreTimeline::sleep(SimTime t) {
  PCPC_ASSERT_MSG(!finalized_, "timeline already finalized");
  PCPC_ASSERT_MSG(t >= last_transition_, "transitions must be monotone");
  if (state_ == CoreState::Idle) return false;
  close_interval(t);
  state_ = CoreState::Idle;
  return true;
}

bool CoreTimeline::resume(SimTime t) {
  PCPC_ASSERT_MSG(!finalized_, "timeline already finalized");
  PCPC_ASSERT_MSG(t >= last_transition_, "transitions must be monotone");
  if (state_ == CoreState::Active) return false;
  if (t == last_transition_) {
    // Zero-length idle gap: undo the sleep instead of charging ω.
    state_ = CoreState::Active;
    return false;
  }
  return wake(t);
}

void CoreTimeline::finalize(SimTime end) {
  PCPC_ASSERT_MSG(!finalized_, "timeline already finalized");
  PCPC_ASSERT_MSG(end >= last_transition_, "finalize before last transition");
  close_interval(end);
  end_ = end;
  finalized_ = true;
}

SimDuration CoreTimeline::idle_time() const {
  PCPC_ASSERT_MSG(finalized_, "idle_time() requires finalize()");
  return duration() - active_time_;
}

SimDuration CoreTimeline::duration() const {
  PCPC_ASSERT_MSG(finalized_, "duration() requires finalize()");
  return end_ - start_;
}

double CoreTimeline::usage_ms_per_s() const {
  PCPC_ASSERT_MSG(finalized_, "usage requires finalize()");
  if (duration() == 0) return 0.0;
  return to_milliseconds(active_time_) / to_seconds(duration());
}

double CoreTimeline::wakeups_per_s() const {
  PCPC_ASSERT_MSG(finalized_, "wakeups/s requires finalize()");
  if (duration() == 0) return 0.0;
  return static_cast<double>(wakeups_) / to_seconds(duration());
}

void CoreTimeline::close_interval(SimTime t) {
  if (t > last_transition_) {
    intervals_.push_back(Interval{last_transition_, t, state_});
    if (state_ == CoreState::Active) active_time_ += t - last_transition_;
  }
  last_transition_ = t;
}

}  // namespace pcpc::power
