#include "pcpc/power/energy_trace.hpp"

#include <algorithm>
#include <fstream>

#include "pcpc/common/assert.hpp"

namespace pcpc::power {

namespace {

/// Instantaneous idle power `into` nanoseconds into a gap of length `gap`.
double idle_power_at(const CStateModel& ladder, SimDuration into) {
  const auto& states = ladder.states();
  double power = states.front().power_w;
  for (const auto& state : states) {
    if (state.target_residency <= into) power = state.power_w;
  }
  return power;
}

}  // namespace

std::vector<PowerSample> sample_power(const CoreTimeline& timeline,
                                      const PowerModelParams& params,
                                      SimDuration resolution) {
  PCPC_ASSERT_MSG(timeline.finalized(), "power trace requires a finalized timeline");
  PCPC_ASSERT_MSG(resolution > 0, "resolution must be positive");
  std::vector<PowerSample> samples;
  const SimTime start = timeline.start_time();
  const SimTime end = timeline.end_time();
  if (end <= start) return samples;
  samples.reserve(static_cast<std::size_t>((end - start) / resolution) + 1);

  const auto& intervals = timeline.intervals();
  std::size_t cursor = 0;
  for (SimTime t = start; t < end; t += resolution) {
    while (cursor + 1 < intervals.size() && intervals[cursor].end <= t) ++cursor;
    PowerSample sample;
    sample.time = t;
    if (cursor < intervals.size() && intervals[cursor].begin <= t &&
        t < intervals[cursor].end) {
      const Interval& interval = intervals[cursor];
      if (interval.state == CoreState::Active) {
        sample.watts = params.active_power_w;
        // Spread the wakeup transition energy over the first sample of an
        // active interval that follows idle time.
        if (t - interval.begin < resolution && interval.begin > start) {
          sample.watts += params.wakeup_energy_j / to_seconds(resolution);
        }
      } else {
        sample.watts = idle_power_at(params.cstates, t - interval.begin);
      }
    } else {
      sample.watts = params.cstates.states().front().power_w;
    }
    samples.push_back(sample);
  }
  return samples;
}

bool save_power_trace(const std::vector<PowerSample>& samples, const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) return false;
  out << "time_s,watts\n";
  for (const auto& s : samples) {
    out << to_seconds(s.time) << ',' << s.watts << '\n';
  }
  return out.good();
}

std::vector<Residency> idle_residency(const CoreTimeline& timeline,
                                      const CStateModel& ladder) {
  PCPC_ASSERT_MSG(timeline.finalized(), "residency requires a finalized timeline");
  const auto& states = ladder.states();
  std::vector<Residency> result;
  result.push_back(Residency{"C0-active", timeline.active_time(), 0.0});
  for (const auto& state : states) result.push_back(Residency{state.name, 0, 0.0});

  SimDuration total_idle = 0;
  for (const auto& interval : timeline.intervals()) {
    if (interval.state != CoreState::Idle) continue;
    const SimDuration gap = interval.length();
    total_idle += gap;
    // Walk the demotion ladder inside this gap.
    for (std::size_t i = 0; i < states.size(); ++i) {
      const SimDuration enter = states[i].target_residency;
      if (enter >= gap) break;
      const SimDuration leave =
          (i + 1 < states.size()) ? std::min(gap, states[i + 1].target_residency) : gap;
      if (leave > enter) result[i + 1].time += leave - enter;
    }
  }
  if (total_idle > 0) {
    for (std::size_t i = 1; i < result.size(); ++i) {
      result[i].fraction_of_idle =
          static_cast<double>(result[i].time) / static_cast<double>(total_idle);
    }
  }
  return result;
}

std::vector<GapBucket> idle_gap_distribution(const CoreTimeline& timeline) {
  PCPC_ASSERT_MSG(timeline.finalized(), "distribution requires a finalized timeline");
  std::vector<GapBucket> buckets{
      {"< 100 us", 0, 0}, {"100 us - 1 ms", 0, 0}, {"1 - 10 ms", 0, 0},
      {"10 - 100 ms", 0, 0}, {">= 100 ms", 0, 0}};
  for (const auto& interval : timeline.intervals()) {
    if (interval.state != CoreState::Idle) continue;
    const SimDuration gap = interval.length();
    std::size_t idx = 4;
    if (gap < microseconds(100)) idx = 0;
    else if (gap < milliseconds(1)) idx = 1;
    else if (gap < milliseconds(10)) idx = 2;
    else if (gap < milliseconds(100)) idx = 3;
    ++buckets[idx].count;
    buckets[idx].total += gap;
  }
  return buckets;
}

}  // namespace pcpc::power
