#include "pcpc/exp/experiment.hpp"

#include "pcpc/common/assert.hpp"

namespace pcpc::exp {

ReplicateMetrics run_replicate(ImplKind kind, const ExperimentSpec& spec,
                               std::size_t replicate) {
  PCPC_ASSERT(spec.pairs > 0);

  trace::WebWorkloadParams workload = spec.workload;
  workload.duration = spec.horizon;
  auto traces = trace::make_shifted_workloads(workload, spec.pairs);

  // Replicates replay the *same* dataset (as the paper does) rotated to a
  // different starting phase, so every replicate and every implementation
  // consumes the identical item set and the confidence interval measures
  // phase/timing sensitivity rather than workload regeneration noise.
  if (replicate > 0) {
    const SimDuration shift =
        (spec.horizon / 97) * static_cast<SimDuration>((replicate * 37) % 97);
    for (auto& t : traces) t = t.phase_shift(shift, spec.horizon);
  }

  impls::ExperimentSetup setup = spec.setup;
  setup.baseline.seed = spec.setup.baseline.seed + replicate;

  const impls::RunResult run =
      impls::run_implementation(kind, traces, spec.horizon, setup);
  const power::EnergyLedger ledger(spec.power);

  ReplicateMetrics m;
  m.power_w = run.extra_power_w(ledger);
  m.wakeups_per_s = run.wakeups_per_s();
  m.usage_ms_per_s = run.usage_ms_per_s();
  m.items = static_cast<double>(run.items);
  m.invocations = static_cast<double>(run.invocations);
  m.overflows = static_cast<double>(run.overflows);
  m.scheduled_wakeups = static_cast<double>(run.scheduled_wakeups);
  m.paid_wakeups = static_cast<double>(run.paid_wakeups);
  m.mean_latency_ms = run.latency_s.mean() * 1e3;
  m.p95_latency_ms = run.latency_s.p95() * 1e3;
  m.mean_batch = run.batch_sizes.mean();
  m.mean_buffer_capacity = run.buffer_capacity.mean();
  m.emergency_borrows = static_cast<double>(run.emergency_borrows);
  if (run.reservations > 0) {
    m.latched_fraction = static_cast<double>(run.latched_reservations) /
                         static_cast<double>(run.reservations);
  }
  return m;
}

std::vector<ReplicateMetrics> run_replicates(ImplKind kind, const ExperimentSpec& spec) {
  PCPC_ASSERT(spec.replicates > 0);
  std::vector<ReplicateMetrics> all;
  all.reserve(spec.replicates);
  for (std::size_t r = 0; r < spec.replicates; ++r) {
    all.push_back(run_replicate(kind, spec, r));
  }
  return all;
}

MetricSummary summarize(const std::vector<ReplicateMetrics>& replicates) {
  const auto reduce = [&](auto field) {
    std::vector<double> values;
    values.reserve(replicates.size());
    for (const auto& r : replicates) values.push_back(field(r));
    return measure(values);
  };
  MetricSummary s;
  s.power_mw = reduce([](const ReplicateMetrics& r) { return r.power_w * 1e3; });
  s.wakeups_per_s = reduce([](const ReplicateMetrics& r) { return r.wakeups_per_s; });
  s.usage_ms_per_s = reduce([](const ReplicateMetrics& r) { return r.usage_ms_per_s; });
  s.overflows = reduce([](const ReplicateMetrics& r) { return r.overflows; });
  s.scheduled_wakeups =
      reduce([](const ReplicateMetrics& r) { return r.scheduled_wakeups; });
  s.mean_latency_ms = reduce([](const ReplicateMetrics& r) { return r.mean_latency_ms; });
  s.p95_latency_ms = reduce([](const ReplicateMetrics& r) { return r.p95_latency_ms; });
  s.mean_batch = reduce([](const ReplicateMetrics& r) { return r.mean_batch; });
  s.mean_buffer_capacity =
      reduce([](const ReplicateMetrics& r) { return r.mean_buffer_capacity; });
  s.replicates = replicates.size();
  return s;
}

MetricSummary summarize(ImplKind kind, const ExperimentSpec& spec) {
  return summarize(run_replicates(kind, spec));
}

}  // namespace pcpc::exp
