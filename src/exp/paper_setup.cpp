#include "pcpc/exp/paper_setup.hpp"

namespace pcpc::exp {

namespace {

/// Shared calibration: service costs and energy constants used by every
/// experiment so implementations are compared under identical work.
void apply_common(ExperimentSpec& spec) {
  spec.replicates = 3;
  spec.horizon = seconds(10);

  power::ServiceModel service;
  service.per_item = microseconds(3);
  service.per_invocation = microseconds(2);
  spec.setup.baseline.service = service;

  spec.power = power::PowerModelParams{};  // Arndale-flavoured defaults

  // The PBPL consumers' decision constants mirror the power model.
  spec.setup.pbpl.costs.per_item_j =
      spec.power.active_power_w * to_seconds(service.per_item);
  spec.setup.pbpl.costs.per_invocation_j =
      spec.power.active_power_w * to_seconds(service.per_invocation);
}

/// The *effective* energy of one extra core activation as seen by a
/// consumer deciding whether to share a wakeup: the idle-exit energy ω
/// itself, the core manager's per-wakeup CPU time, and — dominating on a
/// deep C-state ladder — the fragmentation penalty of splitting one idle
/// gap of roughly a slot into two halves (Figure 1's "grouped peaks"
/// effect, quantified on the ladder).
double effective_wakeup_cost(const power::PowerModelParams& power,
                             const core::PbplConfig& pbpl) {
  const SimDuration gap = pbpl.resolved_slot_size();
  const double fragmentation = 2.0 * power.cstates.idle_energy(gap / 2) -
                               power.cstates.idle_energy(gap);
  return power.wakeup_energy_j +
         power.active_power_w * to_seconds(pbpl.manager_overhead) + fragmentation;
}

}  // namespace

ExperimentSpec single_pair_spec() {
  ExperimentSpec spec;
  spec.pairs = 1;
  apply_common(spec);

  // Hot web log: ≈20 k requests/s with 3× flash crowds.  The 50-item
  // buffer fills in ≈2.5 ms at the base rate, just above the 2.3 ms batch
  // period: a punctual timer (SPBP) mostly beats the fill, while
  // nanosleep oversleep (PBP, lognormal σ=0.6 — jiffy rounding and timer
  // slack) delivers fires late and converts the misses into overflow
  // wakeups.  This is the regime behind the paper's Section III-C3
  // observation that sleep() jitter costs PBP extra wakeups.
  spec.workload.base_rate_hz = 20'000.0;
  spec.workload.diurnal_fraction = 0.25;
  spec.workload.burst_amplitude_factor = 3.0;
  spec.workload.bursts_per_minute = 10.0;

  spec.setup.baseline.cores = 1;  // consumer pinned to one isolated core
  spec.setup.baseline.buffer_capacity = 50;
  spec.setup.baseline.period = microseconds(2300);
  spec.setup.baseline.nanosleep_jitter_sigma = 0.6;
  return spec;
}

ExperimentSpec multi_pair_spec(std::size_t pairs, std::size_t buffer_capacity) {
  ExperimentSpec spec;
  spec.pairs = pairs;
  apply_common(spec);

  // ≈2 k requests/s per pair (each pair replays the same log phase-shifted
  // by 1/M, Section VI-A).
  spec.workload.base_rate_hz = 2'000.0;
  spec.workload.burst_amplitude_factor = 3.0;

  spec.setup.baseline.cores = 2;  // the Arndale's two A15 cores
  spec.setup.baseline.buffer_capacity = buffer_capacity;

  // Δ = 5 ms slot grid with a loose 100 ms response bound: consumers skip
  // slots according to their predicted fill time (B/r̂ ≈ 12.5 ms at B=25,
  // 50 ms at B=100), which is what makes PBPL's wakeups fall with the
  // buffer size in Figure 11.  (The paper's Δ default — the minimum
  // latency bound — applies when the deployment's L is the binding
  // design constraint; its evaluation leaves both unspecified.)
  spec.setup.pbpl.max_latency = milliseconds(100);
  spec.setup.pbpl.slot_size = milliseconds(10);
  spec.setup.pbpl.predictor_window = 8;
  spec.setup.pbpl.pool_segment = 5;
  spec.setup.pbpl.costs.wakeup_j = effective_wakeup_cost(spec.power, spec.setup.pbpl);
  return spec;
}

}  // namespace pcpc::exp
