#include "pcpc/exp/analytic.hpp"

#include <algorithm>

#include "pcpc/common/assert.hpp"

namespace pcpc::exp {

namespace {

/// Long-run baseline idle power (the ledger subtracts the all-idle
/// energy; over tens of seconds the ladder's entry transient is
/// negligible and this converges to the deepest state's draw).
double baseline_power(const power::PowerModelParams& power) {
  const SimDuration window = seconds(100);
  return power.cstates.idle_energy(window) / to_seconds(window);
}

/// Assembles the common power identity:
///   P_extra = usage·P_active + gaps/s·E_idle(gap) + idle-remainder·p_deep
///           + wakeups/s·ω + rate·E_transport − P_baseline
/// where the actual idle is `gaps_per_s` gaps of `gap` nanoseconds each.
double extra_power(double usage_fraction, double gaps_per_s, SimDuration gap,
                   double wakeups_per_s, double rate_hz,
                   const power::PowerModelParams& power) {
  const double active = usage_fraction * power.active_power_w;
  const double idle = gaps_per_s * power.cstates.idle_energy(gap);
  const double wake = wakeups_per_s * power.wakeup_energy_j;
  const double transport = rate_hz * power.item_transport_energy_j;
  return active + idle + wake + transport - baseline_power(power);
}

}  // namespace

AnalyticPrediction predict_signaled(double rate_hz, const impls::BaselineParams& params,
                                    const power::PowerModelParams& power, bool mutex) {
  PCPC_ASSERT(rate_hz > 0.0);
  const SimDuration overhead = mutex ? params.mutex_overhead : params.sem_overhead;
  const SimDuration busy =
      overhead + params.service.per_invocation + params.service.per_item;
  PCPC_ASSERT_MSG(to_seconds(busy) < 1.0 / rate_hz,
                  "sparse-regime formula requires gap > service time");
  AnalyticPrediction p;
  p.invocations_per_s = rate_hz;
  p.wakeups_per_s = rate_hz;
  p.usage_ms_per_s = rate_hz * to_milliseconds(busy);
  p.mean_latency_s = 0.0;  // items are drained the instant they arrive
  const SimDuration gap = from_seconds(1.0 / rate_hz) - busy;
  p.extra_power_w = extra_power(p.usage_ms_per_s / 1000.0, rate_hz, gap,
                                p.wakeups_per_s, rate_hz, power);
  return p;
}

AnalyticPrediction predict_batch(double rate_hz, const impls::BaselineParams& params,
                                 const power::PowerModelParams& power) {
  PCPC_ASSERT(rate_hz > 0.0);
  const auto B = static_cast<double>(params.buffer_capacity);
  AnalyticPrediction p;
  p.invocations_per_s = rate_hz / B;
  p.wakeups_per_s = p.invocations_per_s;
  const SimDuration busy =
      params.batch_overhead + params.service.batch_time(params.buffer_capacity);
  p.usage_ms_per_s = p.invocations_per_s * to_milliseconds(busy);
  // Item k of a batch (k = 0 .. B−1 in arrival order) waits B−1−k gaps.
  p.mean_latency_s = (B - 1.0) / 2.0 / rate_hz;
  const SimDuration gap = from_seconds(B / rate_hz) - busy;
  p.extra_power_w = extra_power(p.usage_ms_per_s / 1000.0, p.invocations_per_s,
                                std::max<SimDuration>(gap, 0), p.wakeups_per_s,
                                rate_hz, power);
  return p;
}

AnalyticPrediction predict_periodic(double rate_hz, const impls::BaselineParams& params,
                                    const power::PowerModelParams& power) {
  PCPC_ASSERT(rate_hz > 0.0);
  const double T = to_seconds(params.period);
  PCPC_ASSERT_MSG(rate_hz * T < static_cast<double>(params.buffer_capacity),
                  "timer-dominated formula requires rate*T < B");
  AnalyticPrediction p;
  p.invocations_per_s = 1.0 / T;
  p.wakeups_per_s = p.invocations_per_s;
  const double batch = rate_hz * T;
  const SimDuration busy =
      params.batch_overhead + params.service.per_invocation +
      from_seconds(batch * to_seconds(params.service.per_item));
  p.usage_ms_per_s = p.invocations_per_s * to_milliseconds(busy);
  p.mean_latency_s = T / 2.0;  // arrivals uniform within the period
  const SimDuration gap = params.period - busy;
  p.extra_power_w = extra_power(p.usage_ms_per_s / 1000.0, p.invocations_per_s,
                                std::max<SimDuration>(gap, 0), p.wakeups_per_s,
                                rate_hz, power);
  return p;
}

AnalyticPrediction predict_busy_wait(double rate_hz,
                                     const impls::BaselineParams& params,
                                     const power::PowerModelParams& power) {
  (void)params;
  AnalyticPrediction p;
  p.invocations_per_s = rate_hz;
  p.wakeups_per_s = 0.0;
  p.usage_ms_per_s = 1000.0;
  p.mean_latency_s = to_seconds(params.service.per_item);
  p.extra_power_w = power.active_power_w +
                    rate_hz * power.item_transport_energy_j - baseline_power(power);
  return p;
}

}  // namespace pcpc::exp
