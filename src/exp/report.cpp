#include "pcpc/exp/report.hpp"

#include <cstdlib>
#include <sstream>

#include "pcpc/common/assert.hpp"
#include "pcpc/common/csv.hpp"
#include "pcpc/common/table.hpp"

namespace pcpc::exp {

ReportTable& Report::add_table(std::string table_name, std::string title,
                               std::vector<std::string> header) {
  PCPC_ASSERT_MSG(!header.empty(), "report table needs at least one column");
  tables_.push_back(ReportTable{std::move(table_name), std::move(title),
                                std::move(header), {}});
  return tables_.back();
}

void Report::add_row(std::vector<std::string> cells) {
  PCPC_ASSERT_MSG(!tables_.empty(), "add_row before any add_table");
  PCPC_ASSERT_MSG(cells.size() == tables_.back().header.size(),
                  "row width must match the table header");
  tables_.back().rows.push_back(std::move(cells));
}

void Report::add_note(std::string note) { notes_.push_back(std::move(note)); }

void Report::print(std::ostream& os) const {
  bool first = true;
  for (const auto& table : tables_) {
    if (!first) os << "\n";
    first = false;
    Table rendered(table.header);
    rendered.set_title(table.title);
    for (const auto& row : table.rows) rendered.add_row(row);
    rendered.print(os);
  }
  for (const auto& note : notes_) os << "\n" << note << "\n";
}

std::string Report::to_markdown() const {
  std::ostringstream os;
  for (const auto& table : tables_) {
    if (!table.title.empty()) os << "## " << table.title << "\n\n";
    os << "|";
    for (const auto& column : table.header) os << " " << column << " |";
    os << "\n|";
    for (std::size_t i = 0; i < table.header.size(); ++i) os << "---|";
    os << "\n";
    for (const auto& row : table.rows) {
      os << "|";
      for (const auto& cell : row) os << " " << cell << " |";
      os << "\n";
    }
    os << "\n";
  }
  for (const auto& note : notes_) os << note << "\n\n";
  return os.str();
}

std::size_t Report::export_csv(const std::string& directory) const {
  std::size_t written = 0;
  for (const auto& table : tables_) {
    const std::string path = directory + "/" + name_ + "_" + table.name + ".csv";
    CsvWriter csv(path, table.header);
    if (!csv.ok()) continue;
    for (const auto& row : table.rows) csv.write_row(row);
    ++written;
  }
  return written;
}

void Report::maybe_export(std::ostream& os) const {
  const char* directory = std::getenv("PCPC_EXPORT_DIR");
  if (directory == nullptr || *directory == '\0') return;
  const std::size_t written = export_csv(directory);
  os << "\n[exported " << written << " CSV table(s) to " << directory << "]\n";
}

}  // namespace pcpc::exp
