#include "pcpc/fault/chaos.hpp"

#include <algorithm>

#include "pcpc/common/assert.hpp"
#include "pcpc/sim/replay.hpp"
#include "pcpc/sim/simulator.hpp"

namespace pcpc::fault {

trace::Trace apply_producer_faults(const trace::Trace& original, FaultInjector& injector) {
  std::vector<SimTime> out;
  out.reserve(original.size());
  SimDuration offset = 0;
  for (const SimTime t : original.timestamps()) {
    offset += injector.producer_stall();
    const SimTime shifted = t + offset;
    out.push_back(shifted);
    const std::size_t extra = injector.burst_items();
    for (std::size_t i = 0; i < extra; ++i) out.push_back(shifted);
  }
  return trace::Trace(std::move(out));
}

ChaosRunResult run_pbpl_under_faults(std::span<const trace::Trace> traces,
                                     SimDuration horizon, const core::PbplConfig& config,
                                     FaultInjector& injector) {
  PCPC_ASSERT_MSG(!traces.empty(), "need at least one producer trace");
  PCPC_ASSERT_MSG(horizon > 0, "horizon must be positive");

  ChaosRunResult result;

  // Producer faults first: they reshape the workload every other layer
  // sees (and the utilization estimate the assignment policies use).
  std::vector<trace::Trace> faulted;
  faulted.reserve(traces.size());
  for (const auto& t : traces) {
    faulted.push_back(apply_producer_faults(t, injector));
    for (const SimTime ts : faulted.back().timestamps()) {
      if (ts < horizon) ++result.offered_items;
    }
  }

  std::vector<double> utilization;
  if (config.assignment != core::AssignmentPolicy::RoundRobin) {
    utilization.reserve(faulted.size());
    for (const auto& t : faulted) {
      const double rate = static_cast<double>(t.size()) / to_seconds(horizon);
      utilization.push_back(rate * to_seconds(config.service.per_item));
    }
  }

  sim::Simulator simulator;
  if (injector.config().deadline_jitter > 0) {
    simulator.set_wakeup_perturbation([&injector] { return injector.deadline_jitter(); });
  }

  core::PbplSystem system(simulator, faulted.size(), config, utilization);

  // Pool pressure: Bg = B0·M means a fresh system has zero free segments,
  // so external memory pressure squeezes the consumers' own allotments —
  // shrink buffers toward one segment and seize what that frees.
  const std::size_t want =
      injector.pressure_segments(system.pool().total_segments());
  if (want > 0) {
    std::size_t seized = system.pool().seize_segments(want);
    for (std::size_t i = 0; seized < want && i < system.consumer_count(); ++i) {
      system.consumer(i).squeeze_buffer();
      seized += system.pool().seize_segments(want - seized);
    }
    injector.note_seized(seized);
  }

  for (std::size_t i = 0; i < system.consumer_count(); ++i) {
    system.consumer(i).set_fault_injector(&injector);
  }

  system.start();
  for (std::size_t i = 0; i < faulted.size(); ++i) {
    core::PbplConsumer& consumer = system.consumer(i);
    sim::replay(simulator, faulted[i].timestamps(), horizon,
                [&consumer](SimTime t) { consumer.produce(t); });
  }
  simulator.run_until(horizon);
  result.pbpl = system.finish(horizon);
  result.faults = injector.stats();
  return result;
}

std::vector<Scenario> standard_scenarios(std::uint64_t seed) {
  std::vector<Scenario> scenarios;

  {
    Scenario s{"baseline", {}};
    s.faults.seed = seed;
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s{"burst_x10", {}};
    s.faults.seed = seed;
    s.faults.burst_probability = 0.05;
    s.faults.burst_factor = 10;
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s{"stall_50ms", {}};
    s.faults.seed = seed;
    s.faults.stall_probability = 0.01;
    s.faults.stall_duration = milliseconds(50);
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s{"slow_consumer", {}};
    s.faults.seed = seed;
    s.faults.slow_handler_probability = 0.2;
    s.faults.handler_delay = milliseconds(5);
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s{"pool_pressure", {}};
    s.faults.seed = seed;
    s.faults.pool_pressure = 0.75;
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s{"clock_jitter", {}};
    s.faults.seed = seed;
    s.faults.deadline_jitter = milliseconds(2);
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s{"everything", {}};
    s.faults.seed = seed;
    s.faults.burst_probability = 0.05;
    s.faults.burst_factor = 10;
    s.faults.stall_probability = 0.01;
    s.faults.stall_duration = milliseconds(50);
    s.faults.slow_handler_probability = 0.2;
    s.faults.handler_delay = milliseconds(5);
    s.faults.pool_pressure = 0.5;
    s.faults.deadline_jitter = milliseconds(1);
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

}  // namespace pcpc::fault
